package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hublab/internal/flowctl"
	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/index"
	"hublab/internal/index/indextest"
	"hublab/internal/sssp"
)

func buildIndex(t testing.TB, n, m int, seed int64) (*graph.Graph, *index.HubLabels) {
	t.Helper()
	g, err := gen.Gnm(n, m, seed)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	idx, err := index.NewHubLabels(g)
	if err != nil {
		t.Fatalf("NewHubLabels: %v", err)
	}
	return g, idx
}

// TestServerMatchesBFS pushes concurrent query streams through the server
// and checks every answer against ground-truth BFS distances.
func TestServerMatchesBFS(t *testing.T) {
	g, idx := buildIndex(t, 300, 540, 3)
	truth := sssp.AllPairs(g)
	srv := New(idx, Options{Shards: 4})
	defer srv.Close()
	const clients = 8
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < 600; k++ {
				u := graph.NodeID((c*131 + k*17) % 300)
				v := graph.NodeID((c*37 + k*101) % 300)
				if got := srv.Query(u, v); got != truth[u][v] {
					select {
					case errCh <- &mismatch{u, v, got, truth[u][v]}:
					default:
					}
					return
				}
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	st := srv.Stats()
	if st.Served != clients*600 {
		t.Errorf("served %d requests, want %d", st.Served, clients*600)
	}
	if st.Batches == 0 || st.Batches > st.Served {
		t.Errorf("implausible batch count %d for %d served", st.Batches, st.Served)
	}
}

type mismatch struct {
	u, v      graph.NodeID
	got, want graph.Weight
}

func (m *mismatch) Error() string {
	return "server mismatch"
}

// TestServerQueryBatch checks the direct batch path against the scalar
// path on both batch-capable and scalar-only backends.
func TestServerQueryBatch(t *testing.T) {
	g, idx := buildIndex(t, 200, 360, 7)
	for _, backend := range []index.Index{idx, index.NewSearch(g)} {
		srv := New(backend, Options{Shards: 2})
		pairs := make([][2]graph.NodeID, 40)
		for i := range pairs {
			pairs[i] = [2]graph.NodeID{graph.NodeID(i * 5 % 200), graph.NodeID(i * 13 % 200)}
		}
		out := make([]graph.Weight, len(pairs))
		srv.QueryBatch(pairs, out)
		for i, p := range pairs {
			if want := backend.Distance(p[0], p[1]); out[i] != want {
				t.Fatalf("%s: batch[%d] = %d, want %d", backend.Name(), i, out[i], want)
			}
		}
		if st := srv.Stats(); st.Served != uint64(len(pairs)) || st.Batches != 1 {
			t.Fatalf("%s: batch-door stats served=%d batches=%d, want %d/1",
				backend.Name(), st.Served, st.Batches, len(pairs))
		}
		// Mix in queue-door traffic and assert the exact accounting
		// identity with the direct door made explicit: Served + Rejected
		// + Shed + Faulted + Timeouts == queue-door submissions + Direct.
		const queued = 25
		for i := 0; i < queued; i++ {
			srv.Query(graph.NodeID(i%200), graph.NodeID((i*31)%200))
		}
		st := srv.Stats()
		if st.Direct != uint64(len(pairs)) || st.DirectBatches != 1 {
			t.Fatalf("%s: direct counters %d/%d, want %d/1",
				backend.Name(), st.Direct, st.DirectBatches, len(pairs))
		}
		if got := st.Served + st.Rejected + st.Shed + st.Faulted + st.Timeouts; got != queued+st.Direct {
			t.Fatalf("%s: accounting identity broken: outcomes %d, submitted %d + direct %d",
				backend.Name(), got, queued, st.Direct)
		}
		srv.Close()
	}
}

// TestServerSwapUnderTraffic rebuilds the index while clients hammer the
// server; every response must be correct under either snapshot (both
// indexes cover the same graph), and after the swap new queries must hit
// the new index.
func TestServerSwapUnderTraffic(t *testing.T) {
	g, idx := buildIndex(t, 250, 450, 9)
	truth := sssp.AllPairs(g)
	srv := New(idx, Options{Shards: 3})
	defer srv.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	fail := make(chan struct{}, 1)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				u := graph.NodeID((c*19 + k*7) % 250)
				v := graph.NodeID((c*3 + k*23) % 250)
				if got := srv.Query(u, v); got != truth[u][v] {
					select {
					case fail <- struct{}{}:
					default:
					}
					return
				}
			}
		}(c)
	}
	// Swap in freshly built replacements (and one container round-trip
	// style FromFlat wrap) while traffic flows.
	for i := 0; i < 5; i++ {
		replacement, err := index.NewHubLabels(g)
		if err != nil {
			t.Fatalf("rebuild: %v", err)
		}
		old := srv.Swap(index.FromFlat(replacement.Flat()))
		if old == nil {
			t.Fatal("Swap returned nil previous index")
		}
	}
	close(stop)
	wg.Wait()
	select {
	case <-fail:
		t.Fatal("query mismatch during snapshot swaps")
	default:
	}
	if srv.Index().Meta().Kind != index.KindHubLabels {
		t.Errorf("served index kind = %q", srv.Index().Meta().Kind)
	}
}

// TestServerScalarBackend runs the server over a backend without a batch
// path (bidirectional search) to exercise the scalar group branch.
func TestServerScalarBackend(t *testing.T) {
	g, _ := buildIndex(t, 120, 210, 5)
	truth := sssp.AllPairs(g)
	srv := New(index.NewSearch(g), Options{Shards: 2, QueueDepth: 4})
	defer srv.Close()
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < 150; k++ {
				u := graph.NodeID((c + k*11) % 120)
				v := graph.NodeID((c*29 + k) % 120)
				if got := srv.Query(u, v); got != truth[u][v] {
					t.Errorf("search backend (%d,%d) = %d, want %d", u, v, got, truth[u][v])
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestServerCloseIdempotent(t *testing.T) {
	_, idx := buildIndex(t, 50, 90, 1)
	srv := New(idx, Options{})
	srv.Close()
	srv.Close()
}

// TestQueryAfterClosePanics pins the post-Close behavior of the blocking
// door: before the close gate existed, Query after Close was a raw
// "send on closed channel" runtime panic (or a hang); now it must be a
// deliberate, descriptive panic — and TryQuery must return ErrClosed
// instead of panicking at all.
func TestQueryAfterClosePanics(t *testing.T) {
	_, idx := buildIndex(t, 50, 90, 1)
	srv := New(idx, Options{Shards: 2})
	srv.Close()
	if _, err := srv.TryQuery("c", 0, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("TryQuery after Close: err = %v, want ErrClosed", err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Query after Close did not panic")
		}
		if s, ok := r.(string); !ok || s == "send on closed channel" {
			t.Fatalf("Query after Close panicked with %v, want the documented message", r)
		}
	}()
	srv.Query(0, 1)
}

// TestQueryBatchAfterClose pins that the direct batch door stays usable
// on the final snapshot after Close (it never touches the shard
// channels).
func TestQueryBatchAfterClose(t *testing.T) {
	_, idx := buildIndex(t, 60, 110, 2)
	srv := New(idx, Options{Shards: 1})
	want := idx.Distance(1, 2)
	srv.Close()
	pairs := [][2]graph.NodeID{{1, 2}}
	out := make([]graph.Weight, 1)
	srv.QueryBatch(pairs, out)
	if out[0] != want {
		t.Fatalf("QueryBatch after Close = %d, want %d", out[0], want)
	}
}

// TestTryQueryOverload saturates a tiny queue behind a slow backend and
// checks the non-blocking door rejects instead of blocking, with exact
// Served+Rejected accounting.
func TestTryQueryOverload(t *testing.T) {
	release := make(chan struct{})
	srv := New(&indextest.Fixed{N: 2, Gate: release}, Options{Shards: 1, QueueDepth: 1})
	defer srv.Close()
	const attempts = 16
	var wg sync.WaitGroup
	var served, rejected atomic.Uint64
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := srv.TryQuery("c", 0, 1)
			switch {
			case err == nil:
				served.Add(1)
			case errors.Is(err, ErrOverloaded):
				rejected.Add(1)
			default:
				t.Errorf("TryQuery: %v", err)
			}
		}()
	}
	// One worker coalescing up to 3 plus one queue slot: at most 4 can be
	// inside the server while the gate is shut, so at least attempts-4
	// must be rejected. Wait for those guaranteed rejections before
	// opening the gate, then let the absorbed ones finish.
	deadline := time.After(10 * time.Second)
	for rejected.Load() < attempts-4 {
		select {
		case <-deadline:
			t.Fatalf("only %d rejections while gate shut, want ≥ %d", rejected.Load(), attempts-4)
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	wg.Wait()
	if served.Load()+rejected.Load() != attempts {
		t.Errorf("served %d + rejected %d != %d attempts", served.Load(), rejected.Load(), attempts)
	}
	st := srv.Stats()
	if st.Served != served.Load() || st.Rejected != rejected.Load() {
		t.Errorf("Stats served=%d rejected=%d, want %d/%d",
			st.Served, st.Rejected, served.Load(), rejected.Load())
	}
}

// TestTryQueryRaceCloseSwap is the overload-safety hammer: many
// goroutines drive TryQuery while Swap replaces the snapshot and Close
// fires mid-traffic. Run under -race. Nothing may panic, and the
// submitted requests must be fully accounted: every attempt returned
// exactly one of success / ErrOverloaded / ErrClosed, and the server's
// counters must match the successes and rejections.
func TestTryQueryRaceCloseSwap(t *testing.T) {
	g, idx := buildIndex(t, 200, 360, 11)
	srv := New(idx, Options{Shards: 2, QueueDepth: 2,
		Admission: &flowctl.Options{Levels: 2, Buckets: 32}})
	var served, rejected, shed, closed atomic.Uint64
	var wg sync.WaitGroup
	const clients = 8
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			id := string(rune('a' + c))
			for k := 0; k < 400; k++ {
				_, err := srv.TryQuery(id, graph.NodeID((c+k)%200), graph.NodeID((c*k)%200))
				switch {
				case err == nil:
					served.Add(1)
				case errors.Is(err, ErrClosed):
					closed.Add(1)
				case errors.Is(err, ErrOverloaded):
					rejected.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}(c)
	}
	// Swap snapshots under fire, then close mid-traffic.
	for i := 0; i < 3; i++ {
		srv.Swap(index.FromFlat(idx.Flat()))
		time.Sleep(time.Millisecond)
	}
	_ = g
	srv.Close()
	wg.Wait()
	total := served.Load() + rejected.Load() + shed.Load() + closed.Load()
	if total != clients*400 {
		t.Fatalf("accounted %d of %d attempts", total, clients*400)
	}
	st := srv.Stats()
	if st.Served != served.Load() {
		t.Errorf("Stats.Served = %d, want %d", st.Served, served.Load())
	}
	if st.Rejected+st.Shed != rejected.Load() {
		t.Errorf("Stats.Rejected+Shed = %d+%d, want %d", st.Rejected, st.Shed, rejected.Load())
	}
	if st.Served+st.Rejected+st.Shed+closed.Load() != clients*400 {
		t.Errorf("Stats total %d+%d+%d + %d closed != %d submitted",
			st.Served, st.Rejected, st.Shed, closed.Load(), clients*400)
	}
	// A second Close must stay a no-op after the drain.
	srv.Close()
}

// TestTryQueryFairShedding drives one flooding client and one polite
// client through an admission-controlled server over a slow backend and
// checks the polite client keeps being served while the flooder is
// shed.
func TestTryQueryFairShedding(t *testing.T) {
	srv := New(&indextest.Fixed{N: 2, Delay: 200 * time.Microsecond},
		Options{Shards: 1, QueueDepth: 1,
			Admission: &flowctl.Options{Levels: 3, Buckets: 64, Inc: 0.2, Dec: 0.001}})
	defer srv.Close()
	stop := make(chan struct{})
	var floodServed, floodAttempts atomic.Uint64
	var wg sync.WaitGroup
	// The worker coalesces up to 3 requests and the queue holds 1 more, so
	// the queue-full signal needs more concurrent flooder calls than the 4
	// the server can absorb.
	for f := 0; f < 6; f++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				floodAttempts.Add(1)
				if _, err := srv.TryQuery("flooder", 0, 1); err == nil {
					floodServed.Add(1)
				}
				// Pace the flood at a few times capacity. An unpaced
				// retry loop attempts millions of times per second, and
				// the MaxDrop<1 trickle of such a rate alone refills a
				// depth-1 queue — beyond SFB's design envelope (BLUE
				// assumes rejection imposes *some* cost on the sender).
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}
	// Give the controller time to saturate the flooder's buckets.
	deadline := time.After(2 * time.Second)
	for {
		st := srv.Stats()
		if st.Shed > 50 {
			break
		}
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			t.Fatalf("controller never began shedding: %+v", st)
		case <-time.After(5 * time.Millisecond):
		}
	}
	// The polite client issues spaced single requests; most must get in.
	politeServed := 0
	const politeAttempts = 30
	for i := 0; i < politeAttempts; i++ {
		if _, err := srv.TryQuery("polite", 0, 1); err == nil {
			politeServed++
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if politeServed < politeAttempts/2 {
		t.Errorf("polite client served %d/%d while flooder active", politeServed, politeAttempts)
	}
	st := srv.Stats()
	if st.Shed == 0 {
		t.Error("no requests shed by the controller")
	}
	if st.PerClientHot < 1 {
		t.Errorf("PerClientHot = %d, want ≥1 (the flooder)", st.PerClientHot)
	}
}

// TestServerZeroAllocQuery asserts the steady-state per-query hot path
// does not allocate.
func TestServerZeroAllocQuery(t *testing.T) {
	_, idx := buildIndex(t, 200, 360, 13)
	srv := New(idx, Options{Shards: 1})
	defer srv.Close()
	// Warm the request pool.
	for i := 0; i < 100; i++ {
		srv.Query(graph.NodeID(i%200), graph.NodeID((i*7)%200))
	}
	avg := testing.AllocsPerRun(500, func() {
		srv.Query(3, 177)
	})
	if avg > 0.05 {
		t.Errorf("Query allocates %.2f objects/op, want 0", avg)
	}
}
