package server

import (
	"sync"
	"testing"

	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/index"
	"hublab/internal/sssp"
)

// TestServerHotCacheHits drives repeated pairs through a cached server
// and checks that (a) every answer matches ground truth regardless of
// whether it came from the cache or the merge, and (b) the cache
// actually fields the repeats.
func TestServerHotCacheHits(t *testing.T) {
	g, idx := buildIndex(t, 200, 360, 11)
	truth := sssp.AllPairs(g)
	srv := New(idx, Options{Shards: 1, HotCache: 1024})
	defer srv.Close()
	pairs := [][2]graph.NodeID{{3, 90}, {17, 17}, {5, 180}, {44, 101}}
	const rounds = 50
	for r := 0; r < rounds; r++ {
		for _, p := range pairs {
			if got := srv.Query(p[0], p[1]); got != truth[p[0]][p[1]] {
				t.Fatalf("round %d (%d,%d): got %d, want %d", r, p[0], p[1], got, truth[p[0]][p[1]])
			}
			// The reversed pair must hit the same canonical entry.
			if got := srv.Query(p[1], p[0]); got != truth[p[0]][p[1]] {
				t.Fatalf("round %d reversed (%d,%d): got %d", r, p[1], p[0], got)
			}
		}
	}
	st := srv.Stats()
	if st.HotHits == 0 {
		t.Fatalf("no cache hits over %d repeats: %+v", rounds, st)
	}
	if st.HotHits+st.HotMisses == 0 || st.HotMisses > st.HotHits {
		t.Fatalf("repeat-heavy traffic should be hit-dominated: hits=%d misses=%d", st.HotHits, st.HotMisses)
	}
	if want := uint64(rounds * len(pairs) * 2); st.Served != want {
		t.Fatalf("served %d, want %d (hits must count as served)", st.Served, want)
	}
}

// TestServerHotCacheSwapInvalidates is the coherence test: warm the
// cache on one graph, swap in an index over a different graph, and
// require the very next query to answer from the new graph — a stale
// hit would return the old distance.
func TestServerHotCacheSwapInvalidates(t *testing.T) {
	g1, idx1 := buildIndex(t, 150, 270, 21)
	g2, err := gen.Gnm(150, 270, 22) // different seed, different distances
	if err != nil {
		t.Fatal(err)
	}
	idx2, err := index.NewHubLabels(g2)
	if err != nil {
		t.Fatal(err)
	}
	truth1 := sssp.AllPairs(g1)
	truth2 := sssp.AllPairs(g2)
	// Find a pair whose distance differs between the graphs, so a stale
	// cache entry is distinguishable from a correct recompute.
	var pu, pv graph.NodeID = -1, -1
	for u := graph.NodeID(0); u < 150 && pu < 0; u++ {
		for v := u + 1; v < 150; v++ {
			if truth1[u][v] != truth2[u][v] {
				pu, pv = u, v
				break
			}
		}
	}
	if pu < 0 {
		t.Fatal("fixture graphs agree everywhere; pick new seeds")
	}
	srv := New(idx1, Options{Shards: 1, HotCache: 256})
	defer srv.Close()
	for i := 0; i < 10; i++ { // warm the entry well past the first miss
		if got := srv.Query(pu, pv); got != truth1[pu][pv] {
			t.Fatalf("pre-swap: got %d, want %d", got, truth1[pu][pv])
		}
	}
	if st := srv.Stats(); st.HotHits == 0 {
		t.Fatal("entry never became hot before the swap")
	}
	old := srv.Swap(idx2)
	if old != idx1 {
		t.Fatal("Swap returned the wrong index")
	}
	for i := 0; i < 3; i++ {
		if got := srv.Query(pu, pv); got != truth2[pu][pv] {
			t.Fatalf("post-swap query %d: got %d, want %d (stale cache?)", i, got, truth2[pu][pv])
		}
	}
}

// TestServerHotCacheConcurrentSwaps hammers a cached server from many
// goroutines while snapshots swap between two indexes over the same
// graph. Both snapshots answer identically, so every reply has exactly
// one correct value no matter which generation served it — any
// cross-generation cache confusion shows up as a wrong distance, and
// the race detector watches the single-writer cache arrays.
func TestServerHotCacheConcurrentSwaps(t *testing.T) {
	g, idxA := buildIndex(t, 200, 360, 31)
	idxB, err := index.NewHubLabels(g)
	if err != nil {
		t.Fatal(err)
	}
	truth := sssp.AllPairs(g)
	srv := New(idxA, Options{Shards: 3, HotCache: 512})
	defer srv.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	fail := make(chan string, 1)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				// Zipf-ish: a few hot pairs plus a cold tail.
				u := graph.NodeID((c + k*k) % 7 * 11 % 200)
				v := graph.NodeID((k % 13) * 15 % 200)
				if got := srv.Query(u, v); got != truth[u][v] {
					select {
					case fail <- "mismatch under swaps":
					default:
					}
					return
				}
			}
		}(c)
	}
	cur := 0
	for i := 0; i < 40; i++ {
		if cur == 0 {
			srv.Swap(idxB)
		} else {
			srv.Swap(idxA)
		}
		cur = 1 - cur
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}
