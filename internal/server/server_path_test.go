package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"hublab/internal/graph"
	"hublab/internal/index/indextest"
)

// TestServerPathAndEccDoors drives the new query kinds end to end through
// the shard queues against a real hub-labels index: paths must be
// edge-valid and weigh the served distance, eccentricities must match the
// farthest door, and reused buffers must come back extended in place.
func TestServerPathAndEccDoors(t *testing.T) {
	g, idx := buildIndex(t, 200, 360, 3)
	srv := New(idx, Options{Shards: 2})
	defer srv.Close()

	var buf []graph.NodeID
	for k := 0; k < 200; k++ {
		u := graph.NodeID(k % g.NumNodes())
		v := graph.NodeID((k * 37) % g.NumNodes())
		d, err := srv.TryQuery("c", u, v)
		if err != nil {
			t.Fatalf("TryQuery: %v", err)
		}
		buf = buf[:0]
		buf, err = srv.TryPath("c", u, v, buf)
		if err != nil {
			t.Fatalf("TryPath(%d,%d): %v", u, v, err)
		}
		if msg := indextest.CheckPath(g, u, v, buf, d); msg != "" {
			t.Fatalf("path(%d,%d): %s", u, v, msg)
		}
	}
	for v := graph.NodeID(0); v < 20; v++ {
		ecc, err := srv.TryEccentricity("c", v)
		if err != nil {
			t.Fatalf("TryEccentricity: %v", err)
		}
		far, fd, err := srv.TryFarthest("c", v)
		if err != nil {
			t.Fatalf("TryFarthest: %v", err)
		}
		if fd != ecc {
			t.Fatalf("farthest distance %d != ecc %d", fd, ecc)
		}
		if got, err := srv.TryQuery("c", v, far); err != nil || got != ecc {
			t.Fatalf("distance(%d, far=%d) = %d/%v, ecc %d", v, far, got, err, ecc)
		}
	}
}

// TestServerUnsupportedKinds: a backend without the capabilities answers
// ErrUnsupported (never panics), and a Swap to a capable index clears the
// condition under live traffic.
func TestServerUnsupportedKinds(t *testing.T) {
	srv := New(&indextest.Fixed{N: 50}, Options{Shards: 1})
	defer srv.Close()
	if _, err := srv.TryPath("c", 0, 3, nil); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("TryPath on fixed index = %v, want ErrUnsupported", err)
	}
	if _, err := srv.TryEccentricity("c", 0); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("TryEccentricity on fixed index = %v, want ErrUnsupported", err)
	}
	if _, _, err := srv.TryFarthest("c", 0); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("TryFarthest on fixed index = %v, want ErrUnsupported", err)
	}

	g, idx := buildIndex(t, 60, 100, 5)
	srv.Swap(idx)
	p, err := srv.TryPath("c", 0, graph.NodeID(g.NumNodes()-1), nil)
	if err != nil {
		t.Fatalf("TryPath after Swap: %v", err)
	}
	if len(p) == 0 {
		t.Fatal("TryPath after Swap returned no path on a connected graph")
	}
}

// TestServerMixedKindsConcurrent hammers all four kinds from many
// goroutines over small queues so the workers see mixed coalesced groups;
// every request must be answered or rejected cleanly, and Stats must
// account for each served request exactly once.
func TestServerMixedKindsConcurrent(t *testing.T) {
	g, idx := buildIndex(t, 150, 270, 7)
	srv := New(idx, Options{Shards: 2, QueueDepth: 4})
	defer srv.Close()
	n := graph.NodeID(g.NumNodes())
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	var served, rejected atomic.Uint64
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []graph.NodeID
			for i := 0; i < perG; i++ {
				u, v := graph.NodeID((w*31+i)%int(n)), graph.NodeID((w*17+i*3)%int(n))
				var err error
				switch i % 4 {
				case 0:
					_, err = srv.TryQuery("c", u, v)
				case 1:
					buf, err = srv.TryPath("c", u, v, buf[:0])
				case 2:
					_, err = srv.TryEccentricity("c", u)
				default:
					_, _, err = srv.TryFarthest("c", u)
				}
				switch {
				case err == nil:
					served.Add(1)
				case errors.Is(err, ErrOverloaded):
					rejected.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := srv.Stats()
	if st.Served != served.Load() {
		t.Errorf("Stats.Served = %d, answered %d", st.Served, served.Load())
	}
	if st.Rejected+st.Shed != rejected.Load() {
		t.Errorf("Stats.Rejected+Shed = %d, turned away %d", st.Rejected+st.Shed, rejected.Load())
	}
	if served.Load()+rejected.Load() != goroutines*perG {
		t.Errorf("accounted %d of %d requests", served.Load()+rejected.Load(), goroutines*perG)
	}
}
