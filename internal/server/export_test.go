package server

// SetBatchSizeForTest re-tunes the shard coalescing bound for the
// batch-size sweep harness. size is clamped to [1, maxBatch].
func SetBatchSizeForTest(size int) {
	if size < 1 {
		size = 1
	}
	if size > maxBatch {
		size = maxBatch
	}
	batchSize = size
}
