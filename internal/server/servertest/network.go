package servertest

import (
	"bufio"
	"errors"
	"math/rand"
	"net"
	"testing"

	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/index"
	"hublab/internal/index/indextest"
	"hublab/internal/netserve"
	"hublab/internal/server"
	"hublab/internal/sssp"
	"hublab/internal/wire"
)

// RunNetworkServing asserts that serving idx through the binary network
// door is answer-for-answer indistinguishable from calling the server
// in-process: every distance, witness path, and eccentricity that comes
// back over a real loopback TCP connection must equal what TryQuery,
// TryPath, and TryFarthest return for the same input, and distances are
// additionally checked against brute-force truth. Mixed frames take the
// per-query door path; a final all-distance frame takes the batched
// TryQueryBatch fast path, so both serving routes are pinned.
func RunNetworkServing(t *testing.T, g *graph.Graph, idx index.Index, seed int64) {
	t.Helper()
	n := g.NumNodes()
	if n == 0 {
		return
	}
	truth := sssp.AllPairs(g)
	srv := server.New(idx, server.Options{Shards: 2})
	defer srv.Close()
	door := netserve.New(srv, netserve.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go door.Serve(ln) //nolint:errcheck // returns net.ErrClosed on door.Close
	defer door.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial door: %v", err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	var (
		frame   []byte
		payload []byte
		rs      []wire.Result
		nextID  uint64
	)
	roundTrip := func(qs []wire.Query) []wire.Result {
		t.Helper()
		nextID++
		frame, err = wire.AppendRequest(frame[:0], nextID, qs)
		if err != nil {
			t.Fatalf("encode request: %v", err)
		}
		if _, err = conn.Write(frame); err != nil {
			t.Fatalf("write frame: %v", err)
		}
		kind, pl, rerr := wire.ReadFrame(br, &payload, 0)
		if rerr != nil {
			t.Fatalf("read reply: %v", rerr)
		}
		if kind != wire.FrameReply {
			t.Fatalf("door answered frame kind %d, want reply", kind)
		}
		kinds := make([]uint8, len(qs))
		for i := range qs {
			kinds[i] = qs[i].Kind
		}
		id, out, perr := wire.ParseReply(pl, kinds, rs[:0])
		if perr != nil {
			t.Fatalf("parse reply: %v", perr)
		}
		if id != nextID {
			t.Fatalf("reply id %d for request %d", id, nextID)
		}
		rs = out
		return out
	}

	rng := rand.New(rand.NewSource(seed))
	pairs := make([][2]graph.NodeID, 40)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))}
	}
	pairs[0][1] = pairs[0][0] // force a self-pair

	// Phase 1: mixed frames — one distance, one path, one eccentricity
	// per frame, each compared against the in-process answer for the
	// identical input. The wire client and the in-process caller are
	// distinct admission identities, but with no induced overload both
	// must be admitted, so OK/error parity is part of the contract.
	var pathBuf []graph.NodeID
	for _, p := range pairs {
		u, v := p[0], p[1]
		got := roundTrip([]wire.Query{
			{Kind: wire.QDist, U: u, V: v},
			{Kind: wire.QPath, U: u, V: v},
			{Kind: wire.QEcc, U: u},
		})

		wantDist, derr := srv.TryQuery("inproc", u, v)
		checkStatus(t, "dist", u, v, got[0].Status, derr)
		if derr == nil {
			if got[0].Dist != wantDist {
				t.Fatalf("wire d(%d,%d)=%d, in-process %d", u, v, got[0].Dist, wantDist)
			}
			if got[0].Dist != truth[u][v] {
				t.Fatalf("wire d(%d,%d)=%d, truth %d", u, v, got[0].Dist, truth[u][v])
			}
		}

		wantPath, perr := srv.TryPath("inproc", u, v, pathBuf[:0])
		pathBuf = wantPath
		checkStatus(t, "path", u, v, got[1].Status, perr)
		if perr == nil && got[1].Status == wire.StatusOK {
			if len(got[1].Path) != len(wantPath) {
				t.Fatalf("wire path %d→%d has %d vertices, in-process %d",
					u, v, len(got[1].Path), len(wantPath))
			}
			for i := range wantPath {
				if got[1].Path[i] != wantPath[i] {
					t.Fatalf("wire path %d→%d differs at hop %d: %d vs %d",
						u, v, i, got[1].Path[i], wantPath[i])
				}
			}
			if truth[u][v] < graph.Infinity {
				if msg := indextest.CheckPath(g, u, v, got[1].Path, truth[u][v]); msg != "" {
					t.Fatalf("wire path %d→%d invalid: %s", u, v, msg)
				}
			}
		}

		wantFar, wantEcc, eerr := srv.TryFarthest("inproc", u)
		checkStatus(t, "ecc", u, u, got[2].Status, eerr)
		if eerr == nil && got[2].Status == wire.StatusOK {
			if got[2].Far != wantFar || got[2].Dist != wantEcc {
				t.Fatalf("wire ecc(%d)=(%d,%d), in-process (%d,%d)",
					u, got[2].Far, got[2].Dist, wantFar, wantEcc)
			}
		}
	}

	// Phase 2: one all-distance frame covering every pair at once. More
	// than one distance query per frame routes through TryQueryBatch on
	// the door, so this pins the coalesced path against the same truth.
	qs := make([]wire.Query, len(pairs))
	for i, p := range pairs {
		qs[i] = wire.Query{Kind: wire.QDist, U: p[0], V: p[1]}
	}
	got := roundTrip(qs)
	for i, p := range pairs {
		if got[i].Status != wire.StatusOK {
			t.Fatalf("batched dist %d→%d status %d", p[0], p[1], got[i].Status)
		}
		if want := truth[p[0]][p[1]]; got[i].Dist != want {
			t.Fatalf("batched wire d(%d,%d)=%d, truth %d", p[0], p[1], got[i].Dist, want)
		}
		if want := idx.Distance(p[0], p[1]); got[i].Dist != want {
			t.Fatalf("batched wire d(%d,%d)=%d, index %d", p[0], p[1], got[i].Dist, want)
		}
	}

	st := door.Stats()
	if st.BadFrames != 0 {
		t.Fatalf("door counted %d bad frames on a well-formed conversation", st.BadFrames)
	}
	if st.Queries == 0 || st.Frames == 0 {
		t.Fatalf("door stats empty after serving: %+v", st)
	}
}

// checkStatus requires the wire status and the in-process error to be
// the same verdict: both OK, or both the same failure class.
func checkStatus(t *testing.T, what string, u, v graph.NodeID, status uint8, err error) {
	t.Helper()
	want := uint8(wire.StatusOK)
	switch {
	case err == nil:
	case errors.Is(err, server.ErrUnsupported), errors.Is(err, hub.ErrNoParents):
		want = wire.StatusUnsupported
	default:
		t.Fatalf("in-process %s(%d,%d) failed unexpectedly: %v", what, u, v, err)
	}
	if status != want {
		t.Fatalf("wire %s(%d,%d) status %d, in-process verdict %d (%v)", what, u, v, status, want, err)
	}
}
