// Package servertest holds serving-layer property runners that cannot
// live in indextest without importing internal/server into its own
// test cycle.
package servertest

import (
	"math/rand"
	"testing"

	"hublab/internal/graph"
	"hublab/internal/index"
	"hublab/internal/server"
	"hublab/internal/sssp"
)

// RunCachedServing asserts that serving idx through a hot-cached server
// is answer-for-answer indistinguishable from the index itself across
// the three cache states a query can meet: cold (first touch, a miss),
// warm (a repeat, served from the cache), and post-swap cold (the
// generation bump discarded the contents). Every answer is also checked
// against brute-force truth, so a cache that returns a stale or
// corrupted value fails even if it is self-consistent.
func RunCachedServing(t *testing.T, g *graph.Graph, idx index.Index, seed int64) {
	t.Helper()
	n := g.NumNodes()
	if n == 0 {
		return
	}
	truth := sssp.AllPairs(g)
	srv := server.New(idx, server.Options{Shards: 2, HotCache: 256})
	defer srv.Close()
	rng := rand.New(rand.NewSource(seed))
	// A working set small enough to go fully hot in a 256-entry cache,
	// including u==v and (via random collisions on small n) repeats.
	pairs := make([][2]graph.NodeID, 48)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))}
	}
	pairs[0][1] = pairs[0][0] // force a self-pair

	check := func(phase string) {
		t.Helper()
		for _, p := range pairs {
			got := srv.Query(p[0], p[1])
			if want := truth[p[0]][p[1]]; got != want {
				t.Fatalf("%s: cached server says d(%d,%d)=%d, truth %d", phase, p[0], p[1], got, want)
			}
			if want := idx.Distance(p[0], p[1]); got != want {
				t.Fatalf("%s: cached server says d(%d,%d)=%d, index %d", phase, p[0], p[1], got, want)
			}
		}
	}

	check("cold")
	before := srv.Stats()
	check("warm")
	check("warm-repeat")
	after := srv.Stats()
	if after.HotHits <= before.HotHits {
		t.Fatalf("warm passes produced no cache hits (hits %d → %d, misses %d)",
			before.HotHits, after.HotHits, after.HotMisses)
	}
	// Swap the same index back in: answers cannot change, but the
	// generation bump must discard the cache — the cold pass still has
	// to be correct and must register fresh misses, not stale hits.
	srv.Swap(idx)
	preCold := srv.Stats()
	check("post-swap-cold")
	postCold := srv.Stats()
	if postCold.HotMisses <= preCold.HotMisses {
		t.Fatalf("post-swap pass registered no misses (misses %d → %d) — stale contents survived the swap",
			preCold.HotMisses, postCold.HotMisses)
	}
}
