package server

// Env-gated measured sweep of the shard coalescing bound (batchSize).
// Two halves. The server half saturates one server per candidate size
// with blocking clients and reports end-to-end queries/sec plus the
// achieved group factor (Served/Batches); sizes alternate inside each
// round so thermal drift hits all candidates equally, best round kept.
// The merge half takes the envelope out: it feeds DistanceBatch groups
// of each size directly and reports ns/query. Run with:
//
//	BATCHSIZE_SWEEP=1 go test -count=1 -run TestBatchSizeSweep -v ./internal/server/
//
// Recorded on the reference box (single-core Xeon, gnm 10000/18000,
// 2 shards, 64 clients, best of 6 rounds):
//
//	server  batch=1..8   0.25–0.26 Mq/s, group factor 1.00 throughout
//	merge   group=1      3133 ns/q   (scalar fallback)
//	merge   group=2      3161 ns/q   (still below the 3-stream fill)
//	merge   group=3      2345 ns/q   (fills the interleave — best)
//	merge   group=4      2406 ns/q   ┐
//	merge   group=6      2374 ns/q   ├ plateau: the interleave refills
//	merge   group=8      2410 ns/q   ┘ streams continuously anyway
//
// Two lessons. On a single-core host the blocking door hands off
// sender→receiver so shard queues never hold a backlog (group factor
// 1.00) and batchSize cannot matter end to end; the envelope, not the
// merge, is the bottleneck there. When queues do back up, the merge
// half shows the group is worth 25% per query at size 3 and nothing
// more beyond it — hub.QueryBatch refills its three streams
// continuously, so a size-6 group is just two fills of the same
// pipeline. batchSize stays 3: the smallest size on the plateau, so
// deeper coalescing cannot buy merge throughput but would add queueing
// delay for the requests at the back of the group.
import (
	"os"
	"sync"
	"testing"
	"time"

	"hublab/internal/graph"
)

func TestBatchSizeSweep(t *testing.T) {
	if os.Getenv("BATCHSIZE_SWEEP") == "" {
		t.Skip("set BATCHSIZE_SWEEP=1 to run the measured sweep")
	}
	defer SetBatchSizeForTest(3)
	const n = 10000
	_, idx := buildIndex(t, n, 18000, 17)
	sizes := []int{1, 2, 3, 4, 6, 8}
	const rounds = 6
	const clients = 64
	const perClient = 1000
	best := map[int]float64{}
	coalesce := map[int]float64{}
	for r := 0; r < rounds; r++ {
		for _, size := range sizes {
			SetBatchSizeForTest(size)
			srv := New(idx, Options{Shards: 2, QueueDepth: 256})
			var wg sync.WaitGroup
			t0 := time.Now()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for k := 0; k < perClient; k++ {
						u := graph.NodeID((c*7919 + k*104729) % n)
						v := graph.NodeID((c*1299709 + k*15485863) % n)
						srv.Query(u, v)
					}
				}(c)
			}
			wg.Wait()
			el := time.Since(t0)
			st := srv.Stats()
			srv.Close()
			qps := float64(clients*perClient) / el.Seconds()
			if qps > best[size] {
				best[size] = qps
				coalesce[size] = float64(st.Served) / float64(st.Batches)
			}
		}
	}
	for _, size := range sizes {
		t.Logf("batch=%d  %6.2f Mq/s  group %.2f", size, best[size]/1e6, coalesce[size])
	}

	// Merge-level half: what a coalesced group of L is worth once it
	// reaches DistanceBatch, with the serving envelope out of the
	// picture. This is the number that justifies coalescing at all.
	pairs := make([][2]graph.NodeID, 1024)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{graph.NodeID((i * 7919) % n), graph.NodeID((i * 104729) % n)}
	}
	out := make([]graph.Weight, len(pairs))
	bestNs := map[int]float64{}
	for r := 0; r < rounds; r++ {
		for _, size := range sizes {
			t0 := time.Now()
			const reps = 20
			for rep := 0; rep < reps; rep++ {
				for off := 0; off < len(pairs); off += size {
					end := off + size
					if end > len(pairs) {
						end = len(pairs)
					}
					idx.DistanceBatch(pairs[off:end], out[off:end])
				}
			}
			ns := float64(time.Since(t0).Nanoseconds()) / float64(reps*len(pairs))
			if bestNs[size] == 0 || ns < bestNs[size] {
				bestNs[size] = ns
			}
		}
	}
	for _, size := range sizes {
		t.Logf("group=%d  %6.0f ns/q", size, bestNs[size])
	}
}
