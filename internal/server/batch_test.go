package server

import (
	"errors"
	"testing"
	"time"

	"hublab/internal/flowctl"
	"hublab/internal/graph"
	"hublab/internal/index/indextest"
	"hublab/internal/sssp"
)

// TestTryQueryBatchMatchesBFS pushes waves through the batched queue
// door and checks every answer against ground truth and against the
// single-query door.
func TestTryQueryBatchMatchesBFS(t *testing.T) {
	g, idx := buildIndex(t, 300, 540, 11)
	truth := sssp.AllPairs(g)
	srv := New(idx, Options{Shards: 4})
	defer srv.Close()
	const batch = 64
	pairs := make([][2]graph.NodeID, batch)
	out := make([]graph.Weight, batch)
	errs := make([]error, batch)
	for round := 0; round < 50; round++ {
		for i := range pairs {
			pairs[i] = [2]graph.NodeID{
				graph.NodeID((round*131 + i*17) % 300),
				graph.NodeID((round*37 + i*101) % 300),
			}
		}
		srv.TryQueryBatch("batch-client", pairs, out, errs)
		for i := range pairs {
			if errs[i] != nil {
				t.Fatalf("round %d slot %d: %v", round, i, errs[i])
			}
			if want := truth[pairs[i][0]][pairs[i][1]]; out[i] != want {
				t.Fatalf("round %d (%d,%d): got %d want %d", round, pairs[i][0], pairs[i][1], out[i], want)
			}
		}
	}
	st := srv.Stats()
	if st.Served != 50*batch {
		t.Errorf("served %d, want %d", st.Served, 50*batch)
	}
	if st.Direct != 0 {
		t.Errorf("batch door leaked into Direct: %d", st.Direct)
	}
	// The wave enters the queues together, so workers must have coalesced
	// well past one query per merge group.
	if st.Batches >= st.Served {
		t.Errorf("no coalescing: %d batches for %d served", st.Batches, st.Served)
	}
}

// TestTryQueryBatchZeroAlloc pins the allocation contract of the
// batched door in steady state.
func TestTryQueryBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts; allocation counts are meaningless")
	}
	_, idx := buildIndex(t, 200, 400, 5)
	srv := New(idx, Options{Shards: 2, Admission: &flowctl.Options{}, QueryTimeout: time.Second})
	defer srv.Close()
	pairs := make([][2]graph.NodeID, 16)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{graph.NodeID(i), graph.NodeID(199 - i)}
	}
	out := make([]graph.Weight, 16)
	errs := make([]error, 16)
	srv.TryQueryBatch("warm", pairs, out, errs) // warm the pools
	allocs := testing.AllocsPerRun(100, func() {
		srv.TryQueryBatch("warm", pairs, out, errs)
	})
	if allocs != 0 {
		t.Errorf("TryQueryBatch allocates %.1f/op in steady state", allocs)
	}
}

// TestTryQueryBatchSheds checks that the batch door flips a shed coin
// per query, not per frame: with every bucket pumped to 1.0 and
// MaxDrop=1, every slot in the wave answers ErrOverloaded and the
// accounting identity counts each one.
func TestTryQueryBatchSheds(t *testing.T) {
	_, idx := buildIndex(t, 100, 200, 7)
	srv := New(idx, Options{Shards: 2, Admission: &flowctl.Options{MaxDrop: 1, Inc: 1}})
	defer srv.Close()
	srv.AdmissionController().OnQueueFull("flooder")
	if !srv.AdmissionController().Shed("flooder") {
		t.Fatal("controller not saturated")
	}
	pairs := make([][2]graph.NodeID, 32)
	out := make([]graph.Weight, 32)
	errs := make([]error, 32)
	srv.TryQueryBatch("flooder", pairs, out, errs)
	for i := range errs {
		if !errors.Is(errs[i], ErrOverloaded) {
			t.Fatalf("slot %d: %v, want ErrOverloaded", i, errs[i])
		}
		if out[i] != graph.Infinity {
			t.Fatalf("slot %d: shed query carried distance %d", i, out[i])
		}
	}
	if st := srv.Stats(); st.Shed != 32 {
		t.Errorf("Shed = %d, want 32", st.Shed)
	}
	// An innocent client on the same server is untouched.
	srv.TryQueryBatch("polite", pairs[:4], out[:4], errs[:4])
	for i := 0; i < 4; i++ {
		if errs[i] != nil {
			t.Fatalf("polite slot %d: %v", i, errs[i])
		}
	}
}

// TestTryQueryBatchOverflow fills the queues with a stalled backend and
// checks partial waves: rejected slots answer ErrOverloaded while
// admitted slots still complete, and the identity Served + Rejected +
// Shed + Faulted + Timeouts covers every slot submitted.
func TestTryQueryBatchOverflow(t *testing.T) {
	gate := make(chan struct{})
	idx := &indextest.Fixed{N: 1000, Gate: gate}
	srv := New(idx, Options{Shards: 1, QueueDepth: 2})
	pairs := make([][2]graph.NodeID, 16)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{0, graph.NodeID(i + 1)}
	}
	out := make([]graph.Weight, 16)
	errs := make([]error, 16)
	done := make(chan struct{})
	go func() {
		srv.TryQueryBatch("c", pairs, out, errs)
		close(done)
	}()
	// Let the wave hit the 2-slot queue, then release the backend.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	<-done
	served, rejected := 0, 0
	for i := range errs {
		switch {
		case errs[i] == nil:
			served++
			if want := graph.Weight(i + 1); out[i] != want {
				t.Fatalf("slot %d: got %d want %d", i, out[i], want)
			}
		case errors.Is(errs[i], ErrOverloaded):
			rejected++
		default:
			t.Fatalf("slot %d: unexpected %v", i, errs[i])
		}
	}
	if rejected == 0 {
		t.Error("no slot rejected despite a 2-deep queue and a stalled worker")
	}
	st := srv.Stats()
	if got := st.Served + st.Rejected + st.Shed + st.Faulted + st.Timeouts; got != 16 {
		t.Errorf("identity: %d counted, want 16 (served=%d rejected=%d)", got, st.Served, st.Rejected)
	}
	if int(st.Served) != served || int(st.Rejected) != rejected {
		t.Errorf("stats (%d,%d) disagree with caller view (%d,%d)", st.Served, st.Rejected, served, rejected)
	}
	srv.Close()
}

// TestTryQueryBatchDeadline stalls the backend past the wave deadline
// and checks every admitted slot answers ErrTimeout without the call
// blocking on the stalled worker.
func TestTryQueryBatchDeadline(t *testing.T) {
	gate := make(chan struct{})
	idx := &indextest.Fixed{N: 100, Gate: gate}
	srv := New(idx, Options{Shards: 1, QueueDepth: 64, QueryTimeout: 30 * time.Millisecond})
	pairs := make([][2]graph.NodeID, 8)
	out := make([]graph.Weight, 8)
	errs := make([]error, 8)
	start := time.Now()
	srv.TryQueryBatch("c", pairs, out, errs)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("wave took %v against a 30ms deadline", elapsed)
	}
	for i := range errs {
		if !errors.Is(errs[i], ErrTimeout) {
			t.Fatalf("slot %d: %v, want ErrTimeout", i, errs[i])
		}
	}
	if st := srv.Stats(); st.Timeouts != 8 {
		t.Errorf("Timeouts = %d, want 8", st.Timeouts)
	}
	close(gate)
	srv.Close()
}

// TestTryQueryBatchClosed checks the typed error after Close.
func TestTryQueryBatchClosed(t *testing.T) {
	_, idx := buildIndex(t, 50, 100, 1)
	srv := New(idx, Options{Shards: 1})
	srv.Close()
	pairs := [][2]graph.NodeID{{1, 2}}
	out := make([]graph.Weight, 1)
	errs := make([]error, 1)
	srv.TryQueryBatch("c", pairs, out, errs)
	if !errors.Is(errs[0], ErrClosed) {
		t.Fatalf("after Close: %v, want ErrClosed", errs[0])
	}
}
