package hublab

// Benchmark harness: one benchmark per experiment in DESIGN.md's index
// (E1–E16), plus ablation benches for the design choices called out there.
// Run with: go test -bench=. -benchmem

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"testing"

	"hublab/internal/approx"
	"hublab/internal/cover"
	"hublab/internal/dlabel"
	"hublab/internal/faultinject"
	"hublab/internal/flowctl"
	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/hdim"
	"hublab/internal/hhl"
	"hublab/internal/hotcache"
	"hublab/internal/hub"
	"hublab/internal/index"
	"hublab/internal/lbound"
	"hublab/internal/netserve"
	"hublab/internal/oracle"
	"hublab/internal/par"
	"hublab/internal/pll"
	"hublab/internal/rs"
	"hublab/internal/server"
	"hublab/internal/sparsehub"
	"hublab/internal/sssp"
	"hublab/internal/sumindex"
	"hublab/internal/ubound"
	"hublab/internal/wire"
)

// BenchmarkE1FigureOne rebuilds H_{2,2} and validates both Figure 1 paths.
func BenchmarkE1FigureOne(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := lbound.FigureOne()
		if err != nil {
			b.Fatal(err)
		}
		if fig.BlueLength != 4*fig.A+4 || fig.RedLength != 4*fig.A+8 {
			b.Fatal("figure mismatch")
		}
	}
}

// BenchmarkE2ExpandG builds the degree-3 expansion G_{2,2} (Theorem 2.1
// (i)+(ii)).
func BenchmarkE2ExpandG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, err := lbound.BuildG(lbound.Params{B: 2, L: 2})
		if err != nil {
			b.Fatal(err)
		}
		if e.G.MaxDegree() > 3 {
			b.Fatal("degree violation")
		}
	}
}

// BenchmarkE3Lemma22All exhaustively verifies Lemma 2.2 on H_{2,2}.
func BenchmarkE3Lemma22All(b *testing.B) {
	h, err := lbound.BuildH(lbound.Params{B: 2, L: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, bad, err := h.VerifyLemma22All(); err != nil || bad != nil {
			b.Fatal("lemma violated")
		}
	}
}

// BenchmarkE4CertifiedVsPLL builds the PLL labeling of H_{3,2} and checks
// it against the certificate (Theorem 1.1's executable form).
func BenchmarkE4CertifiedVsPLL(b *testing.B) {
	h, err := lbound.BuildH(lbound.Params{B: 3, L: 2})
	if err != nil {
		b.Fatal(err)
	}
	cert := h.CertificateH()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		labels, err := pll.Build(h.G, pll.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if labels.ComputeStats().Avg < cert.AvgHubLB {
			b.Fatal("certificate violated")
		}
	}
}

// BenchmarkE5SumIndex runs the full Theorem 1.6 protocol (session build +
// all-pairs verification) on m=4.
func BenchmarkE5SumIndex(b *testing.B) {
	gp, err := sumindex.NewGraphProtocol(2, 2)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	bits := make([]bool, gp.M())
	for i := range bits {
		bits[i] = rng.Intn(2) == 1
	}
	in := sumindex.NewInstance(bits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := gp.NewSession(in)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sess.VerifyAll(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6Theorem41 runs the upper-bound pipeline on a random 3-regular
// graph (D=3).
func BenchmarkE6Theorem41(b *testing.B) {
	g, err := gen.RandomRegular(150, 3, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ubound.Build(g, ubound.Options{D: 3, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if res.Violations != 0 {
			b.Fatal("Lemma 4.2 violation")
		}
	}
}

// BenchmarkE7Behrend constructs and validates a Behrend set for n=4096.
func BenchmarkE7Behrend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		set := rs.BehrendSet(4096)
		if !rs.IsProgressionFree(set) {
			b.Fatal("AP found")
		}
	}
}

// BenchmarkE7MatchingFamily enumerates and verifies the induced matching
// family for s=8, l=2.
func BenchmarkE7MatchingFamily(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mf, err := rs.NewMatchingFamily(8, 2, 5)
		if err != nil {
			b.Fatal(err)
		}
		if err := mf.VerifyInduced(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8SparseHub builds the sparse-graph scheme on a 512-vertex
// 3-regular graph.
func BenchmarkE8SparseHub(b *testing.B) {
	g, err := gen.RandomRegular(512, 3, 9)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparsehub.Build(g, sparsehub.Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9EulerTour builds the log₂3 distance-vector labels (n=256).
func BenchmarkE9EulerTour(b *testing.B) {
	g, err := gen.RandomRegular(256, 3, 21)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dlabel.EulerTour(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9Centroid builds centroid tree labels (n=1023).
func BenchmarkE9Centroid(b *testing.B) {
	g, err := gen.RandomTree(1023, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dlabel.Centroid(g); err != nil {
			b.Fatal(err)
		}
	}
}

// benchQueryGraph builds the shared graph/labeling pair for the E10 query
// benchmarks.
func benchQueryGraph(b *testing.B) (*graph.Graph, *hub.Labeling, [][2]graph.NodeID) {
	b.Helper()
	g, err := gen.Gnm(3000, 5400, 17)
	if err != nil {
		b.Fatal(err)
	}
	labels, err := pll.Build(g, pll.Options{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	pairs := make([][2]graph.NodeID, 512)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{graph.NodeID(rng.Intn(3000)), graph.NodeID(rng.Intn(3000))}
	}
	return g, labels, pairs
}

// BenchmarkE10QueryLabels measures hub-label queries (E10, the oracle
// tradeoff discussion).
func BenchmarkE10QueryLabels(b *testing.B) {
	_, labels, pairs := benchQueryGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		labels.Query(p[0], p[1])
	}
}

// BenchmarkE10QueryBidirectional measures bidirectional graph search.
func BenchmarkE10QueryBidirectional(b *testing.B) {
	g, _, pairs := benchQueryGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		sssp.Distance(g, p[0], p[1])
	}
}

// BenchmarkE10QueryBFS measures a full single-source BFS per query.
func BenchmarkE10QueryBFS(b *testing.B) {
	g, _, pairs := benchQueryGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		sssp.BFS(g, p[0])
	}
}

// --- E10b: flat CSR vs slice-of-slices representation on Gnm(n=10k) -----

var bench10k struct {
	once   sync.Once
	flat   *hub.FlatLabeling
	slices *hub.Labeling // thawed, unfrozen: queries run the slice merge
	graph  *graph.Graph
	pairs  [][2]graph.NodeID
	err    error
}

// benchQueryGraph10k builds (once) the Gnm(10k) PLL labeling in both
// representations plus a shared query workload.
func benchQueryGraph10k(b testing.TB) (*hub.FlatLabeling, *hub.Labeling, [][2]graph.NodeID) {
	b.Helper()
	bench10k.once.Do(func() {
		g, err := gen.Gnm(10000, 18000, 17)
		if err != nil {
			bench10k.err = err
			return
		}
		labels, err := pll.Build(g, pll.Options{})
		if err != nil {
			bench10k.err = err
			return
		}
		bench10k.graph = g
		bench10k.flat = labels.Freeze()
		bench10k.slices = bench10k.flat.Thaw()
		rng := rand.New(rand.NewSource(5))
		bench10k.pairs = make([][2]graph.NodeID, 1024)
		for i := range bench10k.pairs {
			bench10k.pairs[i] = [2]graph.NodeID{
				graph.NodeID(rng.Intn(10000)), graph.NodeID(rng.Intn(10000))}
		}
	})
	if bench10k.err != nil {
		b.Fatal(bench10k.err)
	}
	return bench10k.flat, bench10k.slices, bench10k.pairs
}

// BenchmarkE10QuerySlice10k is the slice-of-slices merge-query baseline.
func BenchmarkE10QuerySlice10k(b *testing.B) {
	_, slices, pairs := benchQueryGraph10k(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		slices.Query(p[0], p[1])
	}
}

// BenchmarkE10QueryFlat10k is the frozen CSR/SoA merge query (expected
// ≥2× the slice baseline, 0 allocs/op).
func BenchmarkE10QueryFlat10k(b *testing.B) {
	flat, _, pairs := benchQueryGraph10k(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		flat.Query(p[0], p[1])
	}
}

// BenchmarkE10QueryFlatBatch10k interleaves two merges per loop via
// QueryBatch — the throughput configuration of the flat representation
// (independent scans overlap in the pipeline).
func BenchmarkE10QueryFlatBatch10k(b *testing.B) {
	flat, _, pairs := benchQueryGraph10k(b)
	out := make([]graph.Weight, len(pairs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(pairs) {
		flat.QueryBatch(pairs, out)
	}
}

// BenchmarkE10QueryFlatBatchPar10k runs QueryBatch from every core — the
// query-service throughput configuration (flat labeling is immutable and
// safe for concurrent readers). ns/op is per 1024-query batch, so divide
// by 1024 to compare with the per-query benchmarks above.
func BenchmarkE10QueryFlatBatchPar10k(b *testing.B) {
	flat, _, pairs := benchQueryGraph10k(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		out := make([]graph.Weight, len(pairs))
		for pb.Next() {
			flat.QueryBatch(pairs, out)
		}
	})
}

// BenchmarkE10VerifyCoverSerial / ...Parallel measure exhaustive cover
// verification with the worker pool pinned to one worker versus all cores.
func benchVerifyGraph(b *testing.B) (*graph.Graph, *hub.Labeling) {
	b.Helper()
	g, err := gen.Gnm(2000, 3600, 17)
	if err != nil {
		b.Fatal(err)
	}
	labels, err := pll.Build(g, pll.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return g, labels
}

func BenchmarkE10VerifyCoverSerial(b *testing.B) {
	g, labels := benchVerifyGraph(b)
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := labels.VerifyCover(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10VerifyCoverParallel(b *testing.B) {
	g, labels := benchVerifyGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := labels.VerifyCover(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11MonotoneClosure computes S* from PLL labels on H_{2,2}
// (Eq. (1) ablation).
func BenchmarkE11MonotoneClosure(b *testing.B) {
	h, err := lbound.BuildH(lbound.Params{B: 2, L: 2})
	if err != nil {
		b.Fatal(err)
	}
	labels, err := pll.Build(h.G, pll.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hub.MonotoneClosure(h.G, labels); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12RoadLike builds PLL on the structured road-like network
// (n=1024).
func BenchmarkE12RoadLike(b *testing.B) {
	g, err := gen.RoadLike(32, 32, 8, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pll.Build(g, pll.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12RandomSparse builds PLL on a random 3-regular graph of the
// same size — the hardness regime.
func BenchmarkE12RandomSparse(b *testing.B) {
	g, err := gen.RandomRegular(1024, 3, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pll.Build(g, pll.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationPLLOrderDegree vs ...OrderRandom: the effect of the
// landmark order on construction cost (label sizes are reported in E12).
func BenchmarkAblationPLLOrderDegree(b *testing.B) {
	g, err := gen.Gnm(1000, 1800, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pll.Build(g, pll.Options{Order: pll.OrderDegree}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPLLOrderRandom(b *testing.B) {
	g, err := gen.Gnm(1000, 1800, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pll.Build(g, pll.Options{Order: pll.OrderRandom, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationVertexCoverGreedy vs ...Konig: Theorem 4.1's vertex
// cover choice (2-approximate matched endpoints vs exact König).
func BenchmarkAblationVertexCoverGreedy(b *testing.B) {
	g, err := gen.RandomRegular(150, 3, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ubound.Build(g, ubound.Options{D: 3, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationVertexCoverKonig(b *testing.B) {
	g, err := gen.RandomRegular(150, 3, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ubound.Build(g, ubound.Options{D: 3, Seed: 1, UseKonig: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGreedyCover measures the greedy 2-hop reference
// construction (small graphs only).
func BenchmarkAblationGreedyCover(b *testing.B) {
	g, err := gen.Gnm(150, 260, 11)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cover.Greedy(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13OracleTradeoff builds and cross-checks the three oracles.
func BenchmarkE13OracleTradeoff(b *testing.B) {
	g, err := gen.RandomRegular(200, 3, 13)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := oracle.Tradeoff(g, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE14CanonicalHHL runs the O(n³) canonical reference (the cost
// PLL avoids).
func BenchmarkE14CanonicalHHL(b *testing.B) {
	g, err := gen.Gnm(100, 190, 3)
	if err != nil {
		b.Fatal(err)
	}
	order := make([]graph.NodeID, 100)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hhl.Canonical(g, order); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE15Collapse builds the +2-error labeling.
func BenchmarkE15Collapse(b *testing.B) {
	g, err := gen.RandomRegular(300, 3, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := approx.Collapse(g); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E17: persistent containers — load vs rebuild (Gnm 10k) -------------

// BenchmarkE17RebuildPLL is the baseline a persisted index avoids: one
// full PLL construction of the E10b Gnm(10k, 18k) instance per iteration.
func BenchmarkE17RebuildPLL(b *testing.B) {
	benchQueryGraph10k(b)
	g := bench10k.graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pll.Build(g, pll.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchContainer10k serializes the 10k labeling once per payload kind.
func benchContainer10k(b *testing.B, compress bool) []byte {
	b.Helper()
	flat, _, _ := benchQueryGraph10k(b)
	var buf bytes.Buffer
	if _, err := flat.WriteContainer(&buf, hub.ContainerOptions{Compress: compress}); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkE17LoadContainerRaw loads the raw-column container of the same
// labeling — the near-memcpy path (expected ≥10× faster than the
// rebuild above).
func BenchmarkE17LoadContainerRaw(b *testing.B) {
	data := benchContainer10k(b, false)
	// One untimed load so short runs measure steady state, not first-touch
	// page faults on a cold heap.
	if _, err := hub.ReadContainer(bytes.NewReader(data)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hub.ReadContainer(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE17LoadContainerGamma loads the Elias-gamma container (≈4.5×
// smaller, decoded straight into the flat arrays).
func BenchmarkE17LoadContainerGamma(b *testing.B) {
	data := benchContainer10k(b, true)
	if _, err := hub.ReadContainer(bytes.NewReader(data)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hub.ReadContainer(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E18: sharded query service throughput vs worker count --------------

// benchServer measures server throughput with the given shard count:
// every benchmark goroutine is a client pushing queries through the
// service (pooled requests, coalesced groups, snapshot reads). ns/op is
// per served query; the per-query hot path must stay at 0 allocs/op.
func benchServer(b *testing.B, shards int) {
	flat, _, pairs := benchQueryGraph10k(b)
	srv := server.New(index.FromFlat(flat), server.Options{Shards: shards})
	defer srv.Close()
	// Warm the request pool so steady state is measured.
	for i := 0; i < 256; i++ {
		p := pairs[i%len(pairs)]
		srv.Query(p[0], p[1])
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		k := 0
		for pb.Next() {
			p := pairs[k%len(pairs)]
			k++
			srv.Query(p[0], p[1])
		}
	})
}

func BenchmarkE18ServerW1(b *testing.B) { benchServer(b, 1) }
func BenchmarkE18ServerW2(b *testing.B) { benchServer(b, 2) }
func BenchmarkE18ServerW4(b *testing.B) { benchServer(b, 4) }
func BenchmarkE18ServerW8(b *testing.B) { benchServer(b, 8) }

// BenchmarkE18ServerBatch measures the direct batch door of the service
// (no shard hop): one 1024-pair QueryBatch per iteration, ns/op per
// batch.
func BenchmarkE18ServerBatch(b *testing.B) {
	flat, _, pairs := benchQueryGraph10k(b)
	srv := server.New(index.FromFlat(flat), server.Options{Shards: 1})
	defer srv.Close()
	out := make([]graph.Weight, len(pairs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.QueryBatch(pairs, out)
	}
}

// --- E19: admission-control overhead on the serving hot path ------------

// BenchmarkE19TryQueryAdmitted measures the non-blocking door end to end
// on the Gnm(10k) index with the fair admission controller attached and
// the client unthrottled — the common-case cost every admitted request
// pays (gate, Shed coin flip, enqueue, merge, OnServed decay). Must stay
// 0 allocs/op.
func BenchmarkE19TryQueryAdmitted(b *testing.B) {
	flat, _, pairs := benchQueryGraph10k(b)
	srv := server.New(index.FromFlat(flat), server.Options{Shards: 1,
		Admission: &flowctl.Options{}})
	defer srv.Close()
	for i := 0; i < 256; i++ {
		p := pairs[i%len(pairs)]
		if _, err := srv.TryQuery("bench-client", p[0], p[1]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if _, err := srv.TryQuery("bench-client", p[0], p[1]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE19ShedDecision measures the controller's admission decision
// alone for a saturated (always-shed-path) client — the cost of turning
// a flooder away, which bounds how cheaply overload is absorbed.
func BenchmarkE19ShedDecision(b *testing.B) {
	ctl := flowctl.New(flowctl.Options{})
	for i := 0; i < 100; i++ {
		ctl.OnQueueFull("flooder")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl.Shed("flooder")
	}
}

// BenchmarkE19ControllerFeedback measures one congestion + one decay
// update — the bucket CAS loops the queue-pressure feedback pays.
func BenchmarkE19ControllerFeedback(b *testing.B) {
	ctl := flowctl.New(flowctl.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl.OnQueueFull("client")
		ctl.OnServed("client")
	}
}

// --- E20: path unpacking and eccentricity queries ------------------------

// benchPathPairs collects pairs of the Gnm(10k) instance whose unpacked
// path length falls in [minHops, maxHops].
func benchPathPairs(b *testing.B, minHops, maxHops int) [][2]graph.NodeID {
	b.Helper()
	flat, _, _ := benchQueryGraph10k(b)
	rng := rand.New(rand.NewSource(23))
	var buf []graph.NodeID
	var err error
	pairs := make([][2]graph.NodeID, 0, 256)
	for tries := 0; len(pairs) < 256 && tries < 200000; tries++ {
		u := graph.NodeID(rng.Intn(10000))
		v := graph.NodeID(rng.Intn(10000))
		buf, err = flat.AppendPath(buf[:0], u, v)
		if err != nil {
			b.Fatal(err)
		}
		if hops := len(buf) - 1; hops >= minHops && hops <= maxHops {
			pairs = append(pairs, [2]graph.NodeID{u, v})
		}
	}
	if len(pairs) == 0 {
		b.Fatalf("no pairs with path length in [%d,%d]", minHops, maxHops)
	}
	return pairs
}

// benchPathUnpack measures AppendPath with a reused destination buffer —
// the configuration the ≤ 2 allocs/query acceptance bound speaks to
// (steady state is 0 allocs/op).
func benchPathUnpack(b *testing.B, minHops, maxHops int) {
	flat, _, _ := benchQueryGraph10k(b)
	pairs := benchPathPairs(b, minHops, maxHops)
	buf := make([]graph.NodeID, 0, 128)
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		buf, err = flat.AppendPath(buf[:0], p[0], p[1])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE20PathUnpackShort/Medium/Long chart path-unpack cost against
// path length on the 10k serving instance.
func BenchmarkE20PathUnpackShort(b *testing.B)  { benchPathUnpack(b, 1, 4) }
func BenchmarkE20PathUnpackMedium(b *testing.B) { benchPathUnpack(b, 5, 8) }
func BenchmarkE20PathUnpackLong(b *testing.B)   { benchPathUnpack(b, 9, 1<<30) }

// benchEcc measures exact eccentricity queries over a prebuilt inverted
// hub index.
func benchEcc(b *testing.B, f *hub.FlatLabeling) {
	e := hub.NewEccIndex(f)
	n := f.NumVertices()
	rng := rand.New(rand.NewSource(31))
	order := make([]graph.NodeID, 512)
	for i := range order {
		order[i] = graph.NodeID(rng.Intn(n))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Eccentricity(order[i%len(order)])
	}
}

// BenchmarkE20EccGnm10k is the worst-case regime: loose expander bounds
// push queries into the budgeted batched-scan fallback.
func BenchmarkE20EccGnm10k(b *testing.B) {
	flat, _, _ := benchQueryGraph10k(b)
	benchEcc(b, flat)
}

// BenchmarkE20EccRoad1k / BenchmarkE20EccTree4k are the structured
// instances where hub bounds are tight and refinement stays sublinear.
func BenchmarkE20EccRoad1k(b *testing.B) {
	g, err := gen.RoadLike(32, 32, 8, 3)
	if err != nil {
		b.Fatal(err)
	}
	labels, err := pll.Build(g, pll.Options{})
	if err != nil {
		b.Fatal(err)
	}
	benchEcc(b, labels.Freeze())
}

func BenchmarkE20EccTree4k(b *testing.B) {
	g, err := gen.RandomTree(4095, 3)
	if err != nil {
		b.Fatal(err)
	}
	labels, err := pll.Build(g, pll.Options{})
	if err != nil {
		b.Fatal(err)
	}
	benchEcc(b, labels.Freeze())
}

// BenchmarkE20EccUpperBound10k is the one-scan bound alone — the O(|S(v)|)
// floor the exact query refines from.
func BenchmarkE20EccUpperBound10k(b *testing.B) {
	flat, _, _ := benchQueryGraph10k(b)
	e := hub.NewEccIndex(flat)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EccentricityUpperBound(graph.NodeID(i % 10000))
	}
}

// BenchmarkE16HighwayDim runs the highway-dimension estimator on the
// road-like network.
func BenchmarkE16HighwayDim(b *testing.B) {
	g, err := gen.RoadLike(12, 12, 4, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hdim.Estimate(g); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E21: zero-copy mmap serving — open latency and view query parity --

// benchAligned10k holds the on-disk aligned container of the 10k
// instance, written once per process.
var benchAligned10k struct {
	once sync.Once
	path string
	err  error
}

// benchAlignedContainer10k writes (once) the Gnm(10k) labeling as an
// aligned v3 container and returns its path. The file lives in the
// process temp dir; benchmarks only read it.
func benchAlignedContainer10k(b *testing.B) string {
	flat, _, _ := benchQueryGraph10k(b)
	benchAligned10k.once.Do(func() {
		dir, err := os.MkdirTemp("", "hublab-e21-")
		if err != nil {
			benchAligned10k.err = err
			return
		}
		path := filepath.Join(dir, "aligned.hli")
		f, err := os.Create(path)
		if err != nil {
			benchAligned10k.err = err
			return
		}
		if _, err := flat.WriteContainer(f, hub.ContainerOptions{Aligned: true}); err != nil {
			benchAligned10k.err = err
			return
		}
		benchAligned10k.err = f.Close()
		benchAligned10k.path = path
	})
	if benchAligned10k.err != nil {
		b.Fatal(benchAligned10k.err)
	}
	return benchAligned10k.path
}

// BenchmarkE21OpenDecode is the decode baseline over the identical v3
// file: full read, column conversion and structural audit per iteration.
func BenchmarkE21OpenDecode(b *testing.B) {
	path := benchAlignedContainer10k(b)
	info, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(info.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := index.Load(path); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE21OpenMmap opens the same container zero-copy per iteration:
// header + whole-file CRC + O(n) run checks, columns pointed at the map.
// The acceptance bar for PR 5 is ≥ 50× faster than BenchmarkE21OpenDecode.
func BenchmarkE21OpenMmap(b *testing.B) {
	path := benchAlignedContainer10k(b)
	info, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(info.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, err := index.LoadMmap(path)
		if err != nil {
			b.Fatal(err)
		}
		x.Release()
	}
}

// BenchmarkE21OpenMmapFirstQuery adds the first query to each open — the
// page-fault-inclusive "time to first answer" a cold serving process
// pays.
func BenchmarkE21OpenMmapFirstQuery(b *testing.B) {
	path := benchAlignedContainer10k(b)
	_, _, pairs := benchQueryGraph10k(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, err := index.LoadMmap(path)
		if err != nil {
			b.Fatal(err)
		}
		p := pairs[i%len(pairs)]
		x.Distance(p[0], p[1])
		x.Release()
	}
}

// BenchmarkE21QueryMmapSteady pins view-query parity: the merge on
// mapped columns must match the owned-array numbers of
// BenchmarkE10QueryFlat10k (same layout, different backing store), at 0
// allocs/op.
func BenchmarkE21QueryMmapSteady(b *testing.B) {
	path := benchAlignedContainer10k(b)
	_, _, pairs := benchQueryGraph10k(b)
	x, err := index.LoadMmap(path)
	if err != nil {
		b.Fatal(err)
	}
	defer x.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		x.Distance(p[0], p[1])
	}
}

// --- E22: fault-injection overhead when disabled -------------------------

// BenchmarkE22FireDisabled pins the zero-cost-when-disabled contract of
// the fault-injection registry: with no faults armed, every hook on the
// serving hot path (worker dispatch, warm, load, save) costs one atomic
// load and no allocations. This is the number that justifies leaving
// the hooks compiled into production binaries.
func BenchmarkE22FireDisabled(b *testing.B) {
	faultinject.Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := faultinject.Fire(faultinject.PointServerWorker); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE22TryQueryFaultsOff measures the full TryQuery door with the
// fault machinery present but disarmed — panic-recovery defer, request
// state arbitration, health tracker — for comparison against the
// pre-chaos E18 serving numbers: the containment layer must be noise.
func BenchmarkE22TryQueryFaultsOff(b *testing.B) {
	faultinject.Disable()
	flat, _, pairs := benchQueryGraph10k(b)
	srv := server.New(index.FromFlat(flat), server.Options{Shards: 4})
	defer srv.Close()
	for i := 0; i < 256; i++ {
		p := pairs[i%len(pairs)]
		srv.Query(p[0], p[1])
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		k := 0
		for pb.Next() {
			p := pairs[k%len(pairs)]
			k++
			if _, err := srv.TryQuery("bench", p[0], p[1]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- E23: build-pipeline benchmarks ----

var benchE23 struct {
	once sync.Once
	g    *graph.Graph // weighted Gnm(3000)
	l    *hub.Labeling
}

func benchE23Setup(b *testing.B) {
	b.Helper()
	benchE23.once.Do(func() {
		ga, err := gen.Gnm(3000, 5400, 23)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(24))
		bld := graph.NewBuilder(ga.NumNodes(), ga.NumEdges())
		for _, e := range ga.Edges() {
			bld.AddWeightedEdge(e.U, e.V, 1+graph.Weight(rng.Intn(9)))
		}
		benchE23.g, err = bld.Build()
		if err != nil {
			b.Fatal(err)
		}
		benchE23.l, err = pll.BuildUnfrozen(benchE23.g, pll.Options{})
		if err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkE23BuildSequential is the reference single-worker PLL build
// on the weighted 3k graph the parallel benches compare against.
func BenchmarkE23BuildSequential(b *testing.B) {
	benchE23Setup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pll.Build(benchE23.g, pll.Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE23BuildParallel8 is the batched engine at 8 workers on the
// same graph (byte-identical output; see E23 for the speedup table).
func BenchmarkE23BuildParallel8(b *testing.B) {
	benchE23Setup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pll.Build(benchE23.g, pll.Options{Workers: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE23OrderBetweenness prices the sampled-Brandes sketch order
// relative to the build it feeds.
func BenchmarkE23OrderBetweenness(b *testing.B) {
	benchE23Setup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pll.BetweennessSketchOrder(benchE23.g, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE23SaveStreaming writes the prebuilt unfrozen labeling
// through the streaming container writer (the ~1×-RSS path).
func BenchmarkE23SaveStreaming(b *testing.B) {
	benchE23Setup(b)
	dir := b.TempDir()
	path := filepath.Join(dir, "s.hli")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := index.SaveStreaming(path, benchE23.l, hub.ContainerOptions{Aligned: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE23SaveFreeze is the same write through freeze-then-Save
// (flat copy built first — the ~2×-RSS path streaming replaces).
func BenchmarkE23SaveFreeze(b *testing.B) {
	benchE23Setup(b)
	dir := b.TempDir()
	path := filepath.Join(dir, "f.hli")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := index.NewHubLabelsFrom(benchE23.l)
		if err := index.Save(path, idx, hub.ContainerOptions{Aligned: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E24: compressed serving — the merge over both representations ------

var benchE24 struct {
	once sync.Once
	c    *hub.CompactLabeling
}

// benchCompact10k converts (once) the shared Gnm(10k) labeling to the
// compact representation.
func benchCompact10k(b testing.TB) (*hub.CompactLabeling, [][2]graph.NodeID) {
	flat, _, pairs := benchQueryGraph10k(b)
	benchE24.once.Do(func() { benchE24.c = hub.CompactFromFlat(flat) })
	return benchE24.c, pairs
}

// BenchmarkE24QueryExpanded10k is the expanded merge on the shared E24
// workload — the baseline the compact premium is read against (the same
// kernel as BenchmarkE10QueryFlat10k, repeated here so the two E24 rows
// come from one run).
func BenchmarkE24QueryExpanded10k(b *testing.B) {
	flat, _, pairs := benchQueryGraph10k(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		flat.Query(p[0], p[1])
	}
}

// BenchmarkE24QueryCompact10k is the rank-sorted delta-decoding merge
// over the compact representation — the latency a compressed serving
// deployment pays per distance query (must stay 0 allocs/op and within
// the E24 acceptance bar of 1.5x the expanded kernel).
func BenchmarkE24QueryCompact10k(b *testing.B) {
	c, pairs := benchCompact10k(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		c.Query(p[0], p[1])
	}
}

// BenchmarkE24PathCompact10k prices full path unpacking over the compact
// representation (parent escapes into the int32 column, hop walk per
// vertex).
func BenchmarkE24PathCompact10k(b *testing.B) {
	c, pairs := benchCompact10k(b)
	if !c.HasParents() {
		b.Skip("no parents on the shared labeling")
	}
	buf := make([]graph.NodeID, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		var err error
		buf, err = c.AppendPath(buf[:0], p[0], p[1])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- E25: serving at production skew — batched kernels and the hot cache

// BenchmarkE25BatchExpanded10k is the 3-stream interleaved expanded
// batch on the shared gnm10k workload — the baseline the compact
// *batched* premium is read against (ns/op is per query).
func BenchmarkE25BatchExpanded10k(b *testing.B) {
	flat, _, pairs := benchQueryGraph10k(b)
	out := make([]graph.Weight, len(pairs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(pairs) {
		flat.QueryBatch(pairs, out)
	}
}

// BenchmarkE25BatchCompact10k is the decode-then-merge compact batch
// (tight sequential byte-decode into pooled scratch, then a lockstep
// two-pair merge over the expanded int32 runs) on the same workload.
// The E25 acceptance gate reads this row against
// BenchmarkE25BatchExpanded10k: the batched compact premium, 1.46× for
// the PR 8 scalar-loop batch, lands at ~1.33–1.40× here — the byte
// decode is a serial dependency chain no interleave can hide (see the
// rejected-variant log at the top of internal/hub/compact_batch.go).
func BenchmarkE25BatchCompact10k(b *testing.B) {
	c, pairs := benchCompact10k(b)
	out := make([]graph.Weight, len(pairs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(pairs) {
		c.QueryBatch(pairs, out)
	}
}

// --- E25 (continued): Zipf-skewed serving traffic and the hot cache ----

var benchRoad struct {
	once    sync.Once
	n       int
	flat    *hub.FlatLabeling
	compact *hub.CompactLabeling
	err     error
}

// benchRoad100x100 builds (once) the road100x100 PLL labeling in both
// representations. The grid's Θ(√n) labels make this the expensive
// fixture — the build is paid once per bench process, and CI's
// -benchtime=1x smoke skips the rows that need it.
func benchRoad100x100(b testing.TB) (int, *hub.FlatLabeling, *hub.CompactLabeling) {
	b.Helper()
	benchRoad.once.Do(func() {
		g, err := gen.RoadLike(100, 100, 8, 3)
		if err != nil {
			benchRoad.err = err
			return
		}
		labels, err := pll.Build(g, pll.Options{})
		if err != nil {
			benchRoad.err = err
			return
		}
		benchRoad.n = g.NumNodes()
		benchRoad.flat = labels.Freeze()
		benchRoad.compact = hub.CompactFromFlat(benchRoad.flat)
	})
	if benchRoad.err != nil {
		b.Fatal(benchRoad.err)
	}
	return benchRoad.n, benchRoad.flat, benchRoad.compact
}

// zipfTrace draws a query sequence over a pool of distinct pairs where
// rank r is chosen with probability ∝ (r+1)^-alpha, by inverse-CDF
// binary search over the cumulative weights. math/rand's Zipf requires
// s > 1, which rules out the α = 0.8 point E25 calls for, so the
// sampler is spelled out. The pool (16Ki pairs) is deliberately larger
// than the hot cache (4Ki entries): the cache can never hold the whole
// workload, so the hit rate measures how much mass the skew
// concentrates on the head, not the cache merely being big enough.
func zipfTrace(n int, alpha float64, seed int64) [][2]graph.NodeID {
	const pool = 16384
	const draws = 1 << 16
	rng := rand.New(rand.NewSource(seed))
	pairs := make([][2]graph.NodeID, pool)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{
			graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))}
	}
	cum := make([]float64, pool)
	total := 0.0
	for r := 0; r < pool; r++ {
		total += math.Pow(float64(r+1), -alpha)
		cum[r] = total
	}
	trace := make([][2]graph.NodeID, draws)
	for i := range trace {
		x := rng.Float64() * total
		r := sort.SearchFloat64s(cum, x)
		if r >= pool {
			r = pool - 1
		}
		trace[i] = pairs[r]
	}
	return trace
}

// benchZipfServer drives one Zipf trace through a serving stack and
// reports ns per end-to-end query plus the achieved cache hit rate as a
// hit_rate metric (0 when the cache is disabled or the run is too short
// to probe it, e.g. -benchtime=1x).
func benchZipfServer(b *testing.B, idx index.Index, n int, alpha float64, hotCache int) {
	trace := zipfTrace(n, alpha, 99)
	srv := server.New(idx, server.Options{Shards: 1, HotCache: hotCache})
	defer srv.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := trace[i%len(trace)]
		srv.Query(p[0], p[1])
	}
	b.StopTimer()
	if st := srv.Stats(); st.HotHits+st.HotMisses > 0 {
		b.ReportMetric(float64(st.HotHits)/float64(st.HotHits+st.HotMisses), "hit_rate")
	}
}

// The eight cached rows: {gnm10k, road100x100} × {expanded, compact} ×
// α ∈ {0.8, 1.1}. ns/op is the end-to-end served latency under skew
// (envelope + cache probe + merge on misses); hit_rate is what fraction
// the cache fielded. Read against the NoCache rows below for the
// end-to-end effect and against BenchmarkE25CacheHitProbe vs the E24
// query rows for the raw probe-vs-merge ratio the ≥5× gate prices.
func BenchmarkE25ZipfGnm10kExpandedA08(b *testing.B) {
	flat, _, _ := benchQueryGraph10k(b)
	benchZipfServer(b, index.FromFlat(flat), 10000, 0.8, 4096)
}

func BenchmarkE25ZipfGnm10kExpandedA11(b *testing.B) {
	flat, _, _ := benchQueryGraph10k(b)
	benchZipfServer(b, index.FromFlat(flat), 10000, 1.1, 4096)
}

func BenchmarkE25ZipfGnm10kCompactA08(b *testing.B) {
	c, _ := benchCompact10k(b)
	benchZipfServer(b, index.FromStore(c), 10000, 0.8, 4096)
}

func BenchmarkE25ZipfGnm10kCompactA11(b *testing.B) {
	c, _ := benchCompact10k(b)
	benchZipfServer(b, index.FromStore(c), 10000, 1.1, 4096)
}

func BenchmarkE25ZipfRoadExpandedA08(b *testing.B) {
	n, flat, _ := benchRoad100x100(b)
	benchZipfServer(b, index.FromFlat(flat), n, 0.8, 4096)
}

func BenchmarkE25ZipfRoadExpandedA11(b *testing.B) {
	n, flat, _ := benchRoad100x100(b)
	benchZipfServer(b, index.FromFlat(flat), n, 1.1, 4096)
}

func BenchmarkE25ZipfRoadCompactA08(b *testing.B) {
	n, _, c := benchRoad100x100(b)
	benchZipfServer(b, index.FromStore(c), n, 0.8, 4096)
}

func BenchmarkE25ZipfRoadCompactA11(b *testing.B) {
	n, _, c := benchRoad100x100(b)
	benchZipfServer(b, index.FromStore(c), n, 1.1, 4096)
}

// The NoCache rows serve the identical α=1.1 trace with the cache
// disabled — the end-to-end price of every query taking the merge.
func BenchmarkE25ZipfGnm10kCompactA11NoCache(b *testing.B) {
	c, _ := benchCompact10k(b)
	benchZipfServer(b, index.FromStore(c), 10000, 1.1, 0)
}

func BenchmarkE25ZipfRoadCompactA11NoCache(b *testing.B) {
	n, _, c := benchRoad100x100(b)
	benchZipfServer(b, index.FromStore(c), n, 1.1, 0)
}

// BenchmarkE25CacheHitProbe is the numerator of the E25 ≥5× gate: the
// cost of a hot-cache hit in isolation (key canonicalization + one
// set probe), to be read against the merge rows it replaces
// (BenchmarkE24QueryExpanded10k / BenchmarkE24QueryCompact10k).
func BenchmarkE25CacheHitProbe(b *testing.B) {
	c := hotcache.New(4096)
	c.ResetIfStale(1)
	const keys = 512
	for i := 0; i < keys; i++ {
		c.Insert(hotcache.Key(graph.NodeID(i), graph.NodeID(i+7777)), graph.Weight(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink graph.Weight
	for i := 0; i < b.N; i++ {
		d, _ := c.Lookup(hotcache.Key(graph.NodeID(i%keys), graph.NodeID(i%keys+7777)))
		sink += d
	}
	benchZipfSink = sink
}

var benchZipfSink graph.Weight

// benchE26Doors starts a binary netserve door and an HTTP door over the
// shared Gnm(10k) labeling — the same pairing experiment E26 measures —
// and returns their addresses. Both are torn down with the benchmark.
func benchE26Doors(b *testing.B) (binAddr, httpAddr string) {
	b.Helper()
	_, slices, _ := benchQueryGraph10k(b)
	srv := server.New(index.NewHubLabelsFrom(slices), server.Options{})
	door := netserve.New(srv, netserve.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go door.Serve(ln) //nolint:errcheck // returns net.ErrClosed on Close
	mux := http.NewServeMux()
	mux.HandleFunc("/distance", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		u, _ := strconv.Atoi(q.Get("u"))
		v, _ := strconv.Atoi(q.Get("v"))
		d, err := srv.TryQuery("bench", graph.NodeID(u), graph.NodeID(v))
		if err != nil {
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(w, "%d\n", d)
	})
	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	hs := &http.Server{Handler: mux}
	go hs.Serve(hln) //nolint:errcheck // returns ErrServerClosed on Close
	b.Cleanup(func() {
		hs.Close()
		door.Close()
		srv.Close()
	})
	return ln.Addr().String(), hln.Addr().String()
}

// BenchmarkE26WireDoorBatch16 is one 16-query binary frame round-trip
// through the netserve door (ns/op is per frame — divide by 16 for
// per-query cost). Read against BenchmarkE26HTTPDoor: the ratio is the
// per-connection view of E26's ≥5× door-throughput gate.
func BenchmarkE26WireDoorBatch16(b *testing.B) {
	binAddr, _ := benchE26Doors(b)
	_, _, pairs := benchQueryGraph10k(b)
	conn, err := net.Dial("tcp", binAddr)
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close() //nolint:errcheck
	br := bufio.NewReader(conn)
	const batch = 16
	qs := make([]wire.Query, batch)
	kinds := make([]uint8, batch)
	rs := make([]wire.Result, batch)
	var frame, buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range qs {
			p := pairs[(i*batch+j)%len(pairs)]
			qs[j] = wire.Query{Kind: wire.QDist, U: p[0], V: p[1]}
		}
		frame, err = wire.AppendRequest(frame[:0], uint64(i), qs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := conn.Write(frame); err != nil {
			b.Fatal(err)
		}
		kind, payload, err := wire.ReadFrame(br, &buf, 1<<20)
		if err != nil || kind != wire.FrameReply {
			b.Fatalf("reply: kind=%d err=%v", kind, err)
		}
		if _, _, err := wire.ParseReply(payload, kinds, rs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE26HTTPDoor is one keep-alive HTTP GET /distance round-trip
// against the same server — the text door E26 compares the binary
// protocol to.
func BenchmarkE26HTTPDoor(b *testing.B) {
	_, httpAddr := benchE26Doors(b)
	_, _, pairs := benchQueryGraph10k(b)
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 2}}
	defer client.CloseIdleConnections()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		resp, err := client.Get(fmt.Sprintf("http://%s/distance?u=%d&v=%d", httpAddr, p[0], p[1]))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}
