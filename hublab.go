// Package hublab is a library for exact distance queries in sparse graphs
// through hub labeling, reproducing "Hardness of Exact Distance Queries in
// Sparse Graphs Through Hub Labeling" (Kosowski, Uznański, Viennot,
// PODC 2019).
//
// The package re-exports the user-facing API:
//
//   - graphs, builders and generators (Graph, Builder, generator funcs);
//   - hub labelings with exact decoding and cover verification (Labeling),
//     built by pruned landmark labeling (BuildPLL), greedy 2-hop cover
//     (BuildGreedyCover), the sparse-graph scheme of ADKP16/GKU16 flavour
//     (BuildSparseHubs), or the paper's Theorem 4.1 pipeline
//     (BuildTheorem41, BuildTheorem14);
//   - the lower-bound constructions H_{b,ℓ} and G_{b,ℓ} with Lemma 2.2
//     verifiers and the triplet-count certificates (BuildLayered,
//     BuildDegree3);
//   - the Sum-Index reduction of Theorem 1.6 (NewSumIndexProtocol);
//   - bit-measured distance labelings (HubDistanceLabels,
//     EulerTourLabels, CentroidTreeLabels);
//   - the serving pipeline: a unified Index interface with buildable
//     backends (BuildIndex, IndexKinds), persistent index containers
//     (SaveIndex, LoadIndex, WriteContainer, ReadContainer) with a
//     constant-extra-memory streaming emission path for large builds
//     (BuildPLLUnfrozen, SaveIndexStreaming), and the
//     sharded in-process query service (NewServer) with non-blocking
//     overload-safe admission (Server.TryQuery, AdmissionOptions,
//     ErrServerOverloaded);
//   - the path-reporting and farthest-point query surface: witness-path
//     unpacking from the labels' parent column (FlatLabeling.AppendPath,
//     IndexPathReporter, Server.TryPath) and exact eccentricities
//     (NewEccIndex, IndexEccentricityReporter, Server.TryEccentricity /
//     TryFarthest).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package hublab

import (
	"io"

	"hublab/internal/approx"
	"hublab/internal/cover"
	"hublab/internal/dlabel"
	"hublab/internal/flowctl"
	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/hdim"
	"hublab/internal/hhl"
	"hublab/internal/hub"
	"hublab/internal/hubclient"
	"hublab/internal/index"
	"hublab/internal/lbound"
	"hublab/internal/oracle"
	"hublab/internal/pll"
	"hublab/internal/rs"
	"hublab/internal/server"
	"hublab/internal/sparsehub"
	"hublab/internal/sssp"
	"hublab/internal/sumindex"
	"hublab/internal/ubound"
	"hublab/internal/wire"
)

// Core graph types.
type (
	// Graph is an immutable undirected CSR graph.
	Graph = graph.Graph
	// Builder accumulates edges for a Graph.
	Builder = graph.Builder
	// NodeID identifies a vertex.
	NodeID = graph.NodeID
	// Weight is an edge weight or distance.
	Weight = graph.Weight
	// Edge is an undirected weighted edge.
	Edge = graph.Edge
)

// Infinity is the unreachable-distance sentinel.
const Infinity = graph.Infinity

// NewBuilder returns a graph builder sized for n vertices and m edges.
func NewBuilder(n, m int) *Builder { return graph.NewBuilder(n, m) }

// WriteGraph serializes g in the text format ReadGraph parses.
func WriteGraph(w io.Writer, g *Graph) error { return graph.Write(w, g) }

// ReadGraph parses a graph written by WriteGraph.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// ReadGraphDimacs parses a DIMACS shortest-path ".gr" file (the 9th
// Implementation Challenge format) into an undirected Graph, merging
// asymmetric arc pairs at their minimum weight. Malformed input returns
// an error wrapping ErrDimacsFormat, never a panic.
func ReadGraphDimacs(r io.Reader) (*Graph, error) { return graph.ReadGr(r) }

// ErrDimacsFormat reports malformed DIMACS .gr input to ReadGraphDimacs.
var ErrDimacsFormat = graph.ErrGrFormat

// Hub labeling types.
type (
	// Labeling is a hub labeling (2-hop cover) with exact distances. It is
	// the mutable builder form; call Freeze to obtain the immutable flat
	// CSR form (FlatLabeling) used for zero-allocation merge queries. All
	// Build* constructors return labelings that are already frozen, except
	// BuildPLLUnfrozen, which defers freezing so SaveIndexStreaming can
	// emit the container without a second in-memory copy.
	Labeling = hub.Labeling
	// FlatLabeling is the frozen CSR/structure-of-arrays labeling: one
	// contiguous offsets array over parallel hub-id and distance columns,
	// with sentinel-terminated per-vertex runs. Queries on it allocate
	// nothing and it is safe for concurrent use.
	FlatLabeling = hub.FlatLabeling
	// CompactLabeling is the queryable compressed labeling: hubs are
	// frequency-rank remapped and stored as delta-encoded byte columns
	// with escape slots, and every query decodes on the fly — answers
	// are byte-identical to FlatLabeling's at a fraction of the resident
	// bytes. Obtain one with CompactFromFlat, ReadContainerStore or
	// OpenStoreMmap (compact v4 containers).
	CompactLabeling = hub.CompactLabeling
	// LabelStore is the representation-generic query interface both
	// FlatLabeling and CompactLabeling satisfy: distance merges, batched
	// queries, witness paths, eccentricity support, space accounting and
	// container serialization, independent of how labels are stored.
	LabelStore = hub.LabelStore
	// Hub is one label entry.
	Hub = hub.Hub
	// PLLOptions configures BuildPLL (landmark order, worker count,
	// progress callback).
	PLLOptions = pll.Options
	// PLLOrderFunc computes a landmark processing order; register one
	// under a name with RegisterPLLOrder to make it selectable through
	// PLLOptions.OrderBy (and hubgen -order).
	PLLOrderFunc = pll.OrderFunc
	// PLLProgress is the snapshot passed to PLLOptions.Progress during a
	// build (roots processed, labels committed).
	PLLProgress = pll.Progress
	// SparseHubOptions configures BuildSparseHubs.
	SparseHubOptions = sparsehub.Options
	// Theorem41Options configures the upper-bound pipeline.
	Theorem41Options = ubound.Options
	// Theorem41Result carries the pipeline's size decomposition.
	Theorem41Result = ubound.Result
)

// BuildPLL computes a pruned landmark labeling — the standard practical
// hub labeling construction. With PLLOptions.Workers > 1 the batched
// parallel engine runs; its output is byte-identical to the sequential
// build (see "Parallel build: the commit-order invariant" in DESIGN.md).
func BuildPLL(g *Graph, opts PLLOptions) (*Labeling, error) { return pll.Build(g, opts) }

// BuildPLLUnfrozen is BuildPLL without the final Freeze: the returned
// labeling keeps only the mutable per-vertex form, so SaveIndexStreaming
// can emit the container while the build's memory is still the only
// copy. Freeze it (or wrap with NewHubLabelsIndex) before querying at
// scale.
func BuildPLLUnfrozen(g *Graph, opts PLLOptions) (*Labeling, error) {
	return pll.BuildUnfrozen(g, opts)
}

// RegisterPLLOrder adds a named landmark ordering to the registry
// consulted by PLLOptions.OrderBy. Built-ins: degree, betweenness,
// random, natural.
func RegisterPLLOrder(name string, f PLLOrderFunc) error { return pll.RegisterOrder(name, f) }

// PLLOrderNames lists the registered landmark orderings.
func PLLOrderNames() []string { return pll.OrderNames() }

// BuildGreedyCover computes a greedy 2-hop cover (small graphs only).
func BuildGreedyCover(g *Graph) (*Labeling, error) { return cover.Greedy(g) }

// BuildSparseHubs runs the sparse-graph scheme: shared random far hubs,
// near balls, exact fix-ups.
func BuildSparseHubs(g *Graph, opts SparseHubOptions) (*sparsehub.Result, error) {
	return sparsehub.Build(g, opts)
}

// BuildTheorem41 runs the paper's Theorem 4.1 construction on a
// bounded-degree graph.
func BuildTheorem41(g *Graph, opts Theorem41Options) (*Theorem41Result, error) {
	return ubound.Build(g, opts)
}

// BuildTheorem14 runs the Theorem 1.4 pipeline (degree reduction + Theorem
// 4.1 + projection) on a sparse average-degree graph.
func BuildTheorem14(g *Graph, opts Theorem41Options) (*Theorem41Result, error) {
	res, _, err := ubound.BuildForSparse(g, opts)
	return res, err
}

// Lower-bound constructions.
type (
	// LayeredParams selects an H_{b,ℓ}/G_{b,ℓ} instance.
	LayeredParams = lbound.Params
	// LayeredGraph is the weighted layered graph H_{b,ℓ}.
	LayeredGraph = lbound.Layered
	// Degree3Graph is the max-degree-3 expansion G_{b,ℓ}.
	Degree3Graph = lbound.Expanded
	// LowerBoundCertificate is the triplet-count certificate.
	LowerBoundCertificate = lbound.Certificate
)

// BuildLayered constructs H_{b,ℓ}.
func BuildLayered(p LayeredParams) (*LayeredGraph, error) { return lbound.BuildH(p) }

// BuildDegree3 constructs the max-degree-3 expansion G_{b,ℓ}.
func BuildDegree3(p LayeredParams) (*Degree3Graph, error) { return lbound.BuildG(p) }

// FigureOne reproduces the paper's Figure 1 data.
func FigureOne() (*lbound.Figure1, error) { return lbound.FigureOne() }

// Sum-Index protocol (Theorem 1.6).
type (
	// SumIndexInstance is a shared Sum-Index input.
	SumIndexInstance = sumindex.Instance
	// SumIndexProtocol is the graph-based reduction.
	SumIndexProtocol = sumindex.GraphProtocol
)

// NewSumIndexProtocol returns the Theorem 1.6 protocol for parameters
// (b, ℓ), handling strings of length m = (2^(b-1))^ℓ.
func NewSumIndexProtocol(b, l int) (*SumIndexProtocol, error) {
	return sumindex.NewGraphProtocol(b, l)
}

// NewSumIndexInstance wraps a bit string.
func NewSumIndexInstance(bits []bool) SumIndexInstance { return sumindex.NewInstance(bits) }

// Distance labelings with bit accounting.
type (
	// DistanceLabels is a set of binary distance labels with a decoder.
	DistanceLabels = dlabel.Labels
)

// HubDistanceLabels compresses a hub labeling into binary labels.
func HubDistanceLabels(l *Labeling) (*DistanceLabels, error) { return dlabel.HubLabels(l) }

// EulerTourLabels builds the log₂3-per-step distance-vector labels of a
// connected unweighted graph.
func EulerTourLabels(g *Graph) (*DistanceLabels, error) { return dlabel.EulerTour(g) }

// CentroidTreeLabels builds the Θ(log²n)-bit centroid labeling of a tree.
func CentroidTreeLabels(g *Graph) (*Labeling, error) { return dlabel.Centroid(g) }

// Ruzsa–Szemerédi substrate.

// BehrendSet returns a large progression-free subset of [0, n).
func BehrendSet(n int) []int { return rs.BehrendSet(n) }

// Generators.

// GenerateGnm returns a connected sparse uniform random graph.
func GenerateGnm(n, m int, seed int64) (*Graph, error) { return gen.Gnm(n, m, seed) }

// GenerateRandomRegular returns a connected random graph with max degree d.
func GenerateRandomRegular(n, d int, seed int64) (*Graph, error) {
	return gen.RandomRegular(n, d, seed)
}

// GenerateGrid returns the rows×cols grid.
func GenerateGrid(rows, cols int) (*Graph, error) { return gen.Grid(rows, cols) }

// GenerateRoadLike returns a weighted grid with fast highway rows/columns.
func GenerateRoadLike(rows, cols, period int, seed int64) (*Graph, error) {
	return gen.RoadLike(rows, cols, period, seed)
}

// GenerateRandomTree returns a uniform random labelled tree.
func GenerateRandomTree(n int, seed int64) (*Graph, error) { return gen.RandomTree(n, seed) }

// GenerateBalancedBinaryTree returns the complete binary tree with the
// given number of leaves (a power of two) — 2·leaves−1 vertices with
// logarithmic hub labels, the scale-test family for million-vertex
// builds.
func GenerateBalancedBinaryTree(leaves int) (*Graph, error) { return gen.BalancedBinaryTree(leaves) }

// GenerateRMAT returns a connected R-MAT graph (Graph500 parameter mix)
// on 2^scale vertices with a skewed degree distribution.
func GenerateRMAT(scale, m int, seed int64) (*Graph, error) { return gen.RMAT(scale, m, seed) }

// Shortest paths.

// ShortestDistance computes one exact distance with bidirectional search.
func ShortestDistance(g *Graph, u, v NodeID) Weight { return sssp.Distance(g, u, v) }

// AllDistancesFrom computes single-source shortest path distances.
func AllDistancesFrom(g *Graph, src NodeID) []Weight { return sssp.Search(g, src).Dist }

// Extensions.

// BuildCanonicalHHL computes the canonical hierarchical hub labeling for a
// processing order — the O(n³) reference PLL is validated against.
func BuildCanonicalHHL(g *Graph, order []NodeID) (*Labeling, error) {
	return hhl.Canonical(g, order)
}

// OracleTradeoff builds the matrix / hub-label / search oracles,
// cross-checks them, and returns the S·T table (paper §1's tradeoff
// discussion).
func OracleTradeoff(g *Graph, samplePairs int) ([]oracle.TradeoffPoint, error) {
	return oracle.Tradeoff(g, samplePairs)
}

// Index lifecycle: build → persist → load → serve.

type (
	// Index is the unified interface over distance-query structures: exact
	// queries plus space accounting and metadata. The distance matrix, hub
	// labels and bidirectional search are registered backends.
	Index = index.Index
	// IndexPathReporter is the optional witness-path capability of an
	// Index: AppendPath reconstructs one shortest u–v path (all three
	// built-in backends implement it; hub labels require the parent
	// column, present in every freshly built labeling and in version-2
	// containers).
	IndexPathReporter = index.PathReporter
	// IndexEccentricityReporter is the optional farthest-point capability
	// of an Index: exact eccentricities and a vertex attaining them.
	IndexEccentricityReporter = index.EccentricityReporter
	// EccIndex answers exact eccentricity/farthest queries from a frozen
	// labeling via farthest-first inverted hub lists with best-first
	// refinement (budgeted, with a batched-scan fallback on loose hub
	// geometries).
	EccIndex = hub.EccIndex
	// IndexMeta describes an index (backend kind, vertex count, and the
	// query-operation estimate used for the S·T table).
	IndexMeta = index.Meta
	// IndexOptions parameterizes BuildIndex.
	IndexOptions = index.Options
	// HubLabelsIndex is the hub-labeling backend — the only one with a
	// persistent container form.
	HubLabelsIndex = index.HubLabels
	// ContainerOptions configures WriteContainer/SaveIndex (raw columns
	// vs Elias-gamma compressed payload; Aligned selects the 64-byte
	// aligned v3 layout servable zero-copy via LoadIndexMmap).
	ContainerOptions = hub.ContainerOptions
	// IndexReleaser is implemented by indexes holding resources the
	// garbage collector cannot reclaim — today the mmap views of
	// LoadIndexMmap. Serving layers that own an index release it after
	// the last in-flight query drains.
	IndexReleaser = index.Releaser
	// Server is the in-process sharded query service: worker goroutines
	// coalesce request streams into interleaved-merge batches over an
	// atomically swappable index snapshot. Trusted callers use the
	// blocking Query; untrusted traffic goes through TryQuery, which
	// never blocks on a full queue and returns ErrServerOverloaded /
	// ErrServerClosed instead of panicking.
	Server = server.Server
	// ServerOptions configures NewServer (shard/worker count, queue
	// depth, and the optional Admission controller).
	ServerOptions = server.Options
	// ServerStats is the served-traffic snapshot (served/batches, the
	// overload counters Rejected, Shed and PerClientHot, and the fault
	// counters Panics, Faulted and Timeouts plus the derived Health).
	ServerStats = server.Stats
	// ServerHealth is the server's fault-health state (ServerHealthy,
	// ServerDegraded, ServerFailed), derived from recent contained
	// panics and query timeouts over a sliding window — overload alone
	// never moves it. Configure the thresholds via
	// ServerOptions.Health.
	ServerHealth = server.HealthState
	// ServerHealthOptions tunes the sliding window and the degraded /
	// failed thresholds of the fault-health state machine.
	ServerHealthOptions = server.HealthOptions
	// AdmissionOptions configures the constant-memory fair admission
	// controller (Stochastic Fair BLUE flavour) attached through
	// ServerOptions.Admission: multi-level Bloom-style per-client
	// shedding probabilities that rise on queue-full events and decay on
	// successful serves.
	AdmissionOptions = flowctl.Options
	// FleetClient is the pooled, batching, hedging client for hubserve
	// -binary doors (the internal/wire framed protocol): calls from any
	// goroutine are coalesced into binary batch frames, pipelined over
	// pooled connections, round-robined across replicas, and retried on
	// the survivors when a replica dies. Construct with NewFleetClient.
	FleetClient = hubclient.Client
	// FleetClientOptions configures NewFleetClient: the replica
	// addresses, the client identity sent to admission control, pool
	// size, batching bounds, timeout, failover hold-down and optional
	// hedging delay.
	FleetClientOptions = hubclient.Options
	// FleetClientStats counts the client's traffic: queries, frames,
	// retries, hedges (and wins), pool-exhausted events and transport
	// errors.
	FleetClientStats = hubclient.Stats
)

// Server fault-health states (see ServerHealth).
const (
	ServerHealthy  = server.Healthy
	ServerDegraded = server.Degraded
	ServerFailed   = server.Failed
)

// Serving errors returned by the Server.Try* doors.
var (
	// ErrServerOverloaded reports a request shed by the admission
	// controller or bounced off a full shard queue; back off and retry.
	ErrServerOverloaded = server.ErrOverloaded
	// ErrServerClosed reports a request issued after (or concurrent
	// with) Server.Close.
	ErrServerClosed = server.ErrClosed
	// ErrServerUnsupported reports a path/eccentricity query against an
	// index without that capability.
	ErrServerUnsupported = server.ErrUnsupported
	// ErrServerBackendFault reports a request whose serving group hit a
	// backend panic (contained by the worker, which keeps serving) or an
	// injected fault; the answer is unusable but the server is intact.
	ErrServerBackendFault = server.ErrBackendFault
	// ErrServerTimeout reports a request abandoned at the
	// ServerOptions.QueryTimeout deadline; the backend may still
	// complete it, but the caller has its answer slot back.
	ErrServerTimeout = server.ErrTimeout
	// ErrNoParents reports a path query against a labeling without a
	// parent column (e.g. one loaded from a version-1 container).
	ErrNoParents = hub.ErrNoParents
	// ErrLabelingViewImmutable reports an in-place mutation attempted on
	// a view-backed (mmap) labeling; CopyOwned first.
	ErrLabelingViewImmutable = hub.ErrViewImmutable
	// ErrFleetOverloaded reports a FleetClient query shed by a replica's
	// admission control (with -peers gossip, by every replica at once);
	// back off and retry.
	ErrFleetOverloaded = wire.ErrOverloaded
	// ErrFleetTimeout reports a FleetClient query that missed its
	// deadline — the replica's per-query deadline or the client's
	// FleetClientOptions.Timeout.
	ErrFleetTimeout = wire.ErrTimeout
)

// BuildIndex constructs a registered index backend ("matrix",
// "hub-labels", "search") over g.
func BuildIndex(kind string, g *Graph, opts IndexOptions) (Index, error) {
	return index.Build(kind, g, opts)
}

// IndexKinds lists the registered index backends.
func IndexKinds() []string { return index.Kinds() }

// NewHubLabelsIndex wraps a labeling as a servable hub-labels index,
// freezing it if necessary.
func NewHubLabelsIndex(l *Labeling) *HubLabelsIndex { return index.NewHubLabelsFrom(l) }

// SaveIndex persists idx at path as a versioned index container
// (checksummed, little-endian, optionally Elias-gamma compressed).
func SaveIndex(path string, idx Index, opts ContainerOptions) error {
	return index.Save(path, idx, opts)
}

// SaveIndexStreaming persists an unfrozen labeling (BuildPLLUnfrozen)
// at path with the same crash-safety and byte-identical output as
// SaveIndex, but without materializing the flat form first: label runs
// stream into the file column by column, so peak memory stays at about
// one copy of the labeling. Gamma compression cannot stream and is
// rejected; use SaveIndex for that.
func SaveIndexStreaming(path string, l *Labeling, opts ContainerOptions) error {
	return index.SaveStreaming(path, l, opts)
}

// LoadIndex loads an index container written by SaveIndex (or
// hubgen -out). The raw-payload path is near-memcpy and never rebuilds
// the mutable labeling form.
func LoadIndex(path string) (*HubLabelsIndex, error) { return index.Load(path) }

// LoadIndexMmap opens a container zero-copy: for aligned (v3) files the
// index's columns are typed views of the memory-mapped region — O(1)
// open, no second copy in anonymous memory, physical pages shared
// between processes serving the same file. The view must be Released
// after its last query (or owned by a Server via OwnIndex/SwapRetire);
// older or compressed containers fall back to the decoded load.
func LoadIndexMmap(path string) (*HubLabelsIndex, error) { return index.LoadMmap(path) }

// VerifySampledIndex spot-checks idx against graph search on pairs random
// vertex pairs — the guard for serving a loaded container, whose graph
// identity the format does not record (a stale cache can match on vertex
// count alone).
func VerifySampledIndex(idx Index, g *Graph, pairs int, seed int64) error {
	return index.VerifySampled(idx, g, pairs, seed)
}

// WriteContainer serializes a frozen labeling as an index container.
func WriteContainer(w io.Writer, f *FlatLabeling, opts ContainerOptions) (int64, error) {
	return f.WriteContainer(w, opts)
}

// ReadContainer parses an index container back into a frozen labeling.
// Corrupt input returns an error (wrapping hub.ErrContainer), never a
// panic.
func ReadContainer(r io.Reader) (*FlatLabeling, error) { return hub.ReadContainer(r) }

// ReadContainerStore parses an index container into its native
// representation: version 1–3 files come back as a *FlatLabeling,
// version-4 (compact) files as a *CompactLabeling serving compressed.
func ReadContainerStore(r io.Reader) (LabelStore, error) { return hub.ReadContainerStore(r) }

// OpenContainerMmap opens an aligned (v3) container file as a
// view-backed FlatLabeling whose columns alias the memory-mapped file.
// Compact (v4) files are decoded and expanded; use OpenStoreMmap to
// serve them compressed. See hub.OpenContainerMmap for the lifetime
// (Release) and validation contract.
func OpenContainerMmap(path string) (*FlatLabeling, error) { return hub.OpenContainerMmap(path) }

// OpenStoreMmap opens a container file in its native representation,
// zero-copy where the format allows: aligned (v3) files map as expanded
// views, compact (v4) files map as compressed views that decode per
// query — the resident working set is then the compressed bytes
// actually touched. See hub.OpenStoreMmap for the lifetime (Release)
// and validation contract.
func OpenStoreMmap(path string) (LabelStore, error) { return hub.OpenStoreMmap(path) }

// CompactFromFlat re-encodes a frozen labeling into the compressed
// queryable representation (identical answers, smaller resident set).
func CompactFromFlat(f *FlatLabeling) *CompactLabeling { return hub.CompactFromFlat(f) }

// NewServer starts the sharded query service over idx. Close it to
// release the workers; Swap replaces the served index under live traffic.
func NewServer(idx Index, opts ServerOptions) *Server { return server.New(idx, opts) }

// NewFleetClient connects to a fleet of hubserve -binary replicas.
// Queries load-balance across the replicas, fail over on transport
// errors, and travel as binary batch frames — 5–10× the HTTP door's
// per-connection throughput at batch sizes ≥16. Close it to release
// the connections and collectors.
func NewFleetClient(opts FleetClientOptions) (*FleetClient, error) { return hubclient.New(opts) }

// NewEccIndex inverts a frozen label store — expanded or compact —
// into the farthest-first per-hub lists that answer exact eccentricity
// and farthest-vertex queries. The index is identical across
// representations of the same labeling.
func NewEccIndex(s LabelStore) *EccIndex { return hub.NewEccIndex(s) }

// EstimateHighwayDimension returns greedy shortest-path-cover sizes per
// doubling scale (the ADF+16 highway-dimension proxy).
func EstimateHighwayDimension(g *Graph) ([]hdim.ScaleEstimate, error) {
	return hdim.Estimate(g)
}

// BuildApproxLabels builds the +2-additive-error hub labeling of §1.1
// (exact hubs collapsed onto a dominating set).
func BuildApproxLabels(g *Graph) (*approx.CollapseResult, error) {
	return approx.Collapse(g)
}
