package hublab

// Integration tests exercising multi-module pipelines end to end: the
// degree-3 hardness graph under a real labeling algorithm, Theorem 1.4 on a
// structured network, serialization round trips of live labelings, oracles
// over the paper's own instances, and the approximate-label guarantee on
// planar-ish inputs.

import (
	"math/rand"
	"testing"

	"hublab/internal/hub"
	"hublab/internal/sssp"
)

// TestIntegrationDegree3PLL builds the full 24,400-vertex G_{2,2}, runs PLL
// on it, and checks that decoded bottom-to-top center distances equal the
// weighted distances in H_{2,2} — the hardness construction consumed by the
// practical algorithm, with the certificate bound holding.
func TestIntegrationDegree3PLL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 24k-vertex graph")
	}
	e, err := BuildDegree3(LayeredParams{B: 2, L: 2})
	if err != nil {
		t.Fatalf("BuildDegree3: %v", err)
	}
	labels, err := BuildPLL(e.G, PLLOptions{})
	if err != nil {
		t.Fatalf("BuildPLL: %v", err)
	}
	h := e.H
	layer := h.Params.LayerSize()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 12; i++ {
		u := NodeID(rng.Intn(layer))               // level 0
		v := NodeID(2*h.L*layer + rng.Intn(layer)) // level 2L
		want := sssp.Dijkstra(h.G, u).Dist[v]      // weighted distance in H
		got, ok := labels.Query(e.CenterOf(u), e.CenterOf(v))
		if !ok || got != want {
			t.Fatalf("pair (%d,%d): labels decode (%d,%v), want %d", u, v, got, ok, want)
		}
	}
	cert := e.CertificateG()
	if avg := labels.ComputeStats().Avg; avg < cert.AvgHubLB {
		t.Errorf("PLL avg %.4f below certificate %.4f — impossible", avg, cert.AvgHubLB)
	}
}

// TestIntegrationTheorem14OnGrid runs the full average-degree pipeline on a
// unit grid and verifies the projected labeling exhaustively.
func TestIntegrationTheorem14OnGrid(t *testing.T) {
	g, err := GenerateGrid(9, 9)
	if err != nil {
		t.Fatalf("GenerateGrid: %v", err)
	}
	res, err := BuildTheorem14(g, Theorem41Options{D: 3, Seed: 4})
	if err != nil {
		t.Fatalf("BuildTheorem14: %v", err)
	}
	if err := res.Labeling.VerifyCover(g); err != nil {
		t.Errorf("VerifyCover: %v", err)
	}
	if res.Violations != 0 {
		t.Errorf("Lemma 4.2 violations: %d", res.Violations)
	}
}

// TestIntegrationSerializeLiveLabeling round-trips a PLL labeling of the
// lower-bound graph H_{3,2} through the bit codec and re-verifies coverage.
func TestIntegrationSerializeLiveLabeling(t *testing.T) {
	h, err := BuildLayered(LayeredParams{B: 3, L: 2})
	if err != nil {
		t.Fatalf("BuildLayered: %v", err)
	}
	labels, err := BuildPLL(h.G, PLLOptions{})
	if err != nil {
		t.Fatalf("BuildPLL: %v", err)
	}
	data, err := labels.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back, err := hub.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if err := back.VerifySampled(h.G, 300, 6); err != nil {
		t.Errorf("decoded labeling fails verification: %v", err)
	}
	// Bit accounting sanity: stream length matches the per-vertex sizes.
	total := 0
	for _, bits := range labels.BitSize() {
		total += bits
	}
	if len(data)*8 < total {
		t.Errorf("stream %d bits shorter than per-vertex total %d", len(data)*8, total)
	}
}

// TestIntegrationOracleOnHardInstance runs the oracle tradeoff over the
// paper's weighted hardness graph H_{2,2} (the shared fixture).
func TestIntegrationOracleOnHardInstance(t *testing.T) {
	h := sharedLayered22(t)
	points, err := OracleTradeoff(h.G, 200)
	if err != nil {
		t.Fatalf("OracleTradeoff: %v", err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
}

// TestIntegrationApproxOnGrid checks the +2 guarantee end to end on a grid
// (a graph family quite different from the random ones in unit tests).
func TestIntegrationApproxOnGrid(t *testing.T) {
	g, err := GenerateGrid(8, 8)
	if err != nil {
		t.Fatalf("GenerateGrid: %v", err)
	}
	res, err := BuildApproxLabels(g)
	if err != nil {
		t.Fatalf("BuildApproxLabels: %v", err)
	}
	d := sssp.AllPairs(g)
	for u := 0; u < g.NumNodes(); u++ {
		for v := 0; v < g.NumNodes(); v++ {
			got, ok := res.Labeling.Query(NodeID(u), NodeID(v))
			if !ok {
				t.Fatalf("pair (%d,%d): no common hub", u, v)
			}
			if got < d[u][v] || got > d[u][v]+2 {
				t.Fatalf("pair (%d,%d): decode %d, true %d", u, v, got, d[u][v])
			}
		}
	}
}

// TestIntegrationCentroidVsPLLOnTrees: on trees, centroid labels and PLL
// labels are both exact; centroid must be asymptotically smaller.
func TestIntegrationCentroidVsPLLOnTrees(t *testing.T) {
	tree, err := GenerateRandomTree(500, 11)
	if err != nil {
		t.Fatalf("GenerateRandomTree: %v", err)
	}
	centroid, err := CentroidTreeLabels(tree)
	if err != nil {
		t.Fatalf("CentroidTreeLabels: %v", err)
	}
	pllLabels, err := BuildPLL(tree, PLLOptions{})
	if err != nil {
		t.Fatalf("BuildPLL: %v", err)
	}
	if err := centroid.VerifySampled(tree, 400, 2); err != nil {
		t.Fatalf("centroid verification: %v", err)
	}
	if err := pllLabels.VerifySampled(tree, 400, 2); err != nil {
		t.Fatalf("pll verification: %v", err)
	}
	c, p := centroid.ComputeStats(), pllLabels.ComputeStats()
	if c.Max > 2*p.Max+8 {
		t.Errorf("centroid max %d should be comparable to PLL max %d on trees", c.Max, p.Max)
	}
}

// TestIntegrationLemma22SurvivesDeletion ties lbound and sumindex: deleting
// a midpoint must raise the corresponding pair's distance by exactly the
// +2 second-best margin (or disconnect it), never lower it.
func TestIntegrationLemma22SurvivesDeletion(t *testing.T) {
	p, err := NewSumIndexProtocol(2, 2)
	if err != nil {
		t.Fatalf("NewSumIndexProtocol: %v", err)
	}
	m := p.M()
	// All-ones instance: nothing removed; all-zeros: everything removed.
	ones := make([]bool, m)
	for i := range ones {
		ones[i] = true
	}
	sessOnes, err := p.NewSession(NewSumIndexInstance(ones))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	sessZeros, err := p.NewSession(NewSumIndexInstance(make([]bool, m)))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			trOne, err := sessOnes.Run(a, b)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			trZero, err := sessZeros.Run(a, b)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if trOne.Output != 1 || trZero.Output != 0 {
				t.Fatalf("(a=%d,b=%d): outputs %d/%d, want 1/0", a, b, trOne.Output, trZero.Output)
			}
		}
	}
}

// TestIntegrationDistanceLabelSchemesAgree: three independent label schemes
// must decode identical distances on the same graph (the shared Gnm/PLL
// fixture, so the labeling is built once per process).
func TestIntegrationDistanceLabelSchemesAgree(t *testing.T) {
	g, pllLabels := sharedGnmPLL(t)
	hubBits, err := HubDistanceLabels(pllLabels)
	if err != nil {
		t.Fatalf("HubDistanceLabels: %v", err)
	}
	euler, err := EulerTourLabels(g)
	if err != nil {
		t.Fatalf("EulerTourLabels: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		u := NodeID(rng.Intn(g.NumNodes()))
		v := NodeID(rng.Intn(g.NumNodes()))
		a, err := hubBits.Decode(u, v)
		if err != nil {
			t.Fatalf("hub decode: %v", err)
		}
		b, err := euler.Decode(u, v)
		if err != nil {
			t.Fatalf("euler decode: %v", err)
		}
		if a != b {
			t.Fatalf("schemes disagree on (%d,%d): %d vs %d", u, v, a, b)
		}
	}
}
