// Command hubq queries a hubserve fleet over the binary batch protocol
// (hubserve -binary) through the pooled, hedging client in
// internal/hubclient. It is the fleet-side counterpart of piping lines
// into hubserve: the same query grammar and the same answer lines, but
// transported over framed binary batches, load-balanced across
// replicas, with automatic failover and optional hedging.
//
// Line mode (default) reads queries from stdin, one per line, and
// answers on stdout exactly like hubserve's line door:
//
//	u v          ->  "u v dist" ("inf" when unreachable)
//	PATH u v     ->  "path u v v0 v1 ... vk" ("path u v inf")
//	ECC v        ->  "ecc v <eccentricity> <farthest>"
//	quit         ->  stop
//
// Overloaded requests answer "BUSY" (the fleet's admission controllers
// rejected this client — with -peers gossip, on every replica at
// once), timed-out ones "TIMEOUT". Because answers are printed in
// input order, line mode is drop-in comparable with a single
// hubserve's output: diff the two to check a fleet serves exactly what
// one node serves.
//
// Flood mode (-flood n) issues n random distance queries over [0,
// -vertices) from -concurrency workers and reports throughput plus an
// outcome census — the load generator for the fleet chaos smoke, where
// a replica is SIGKILLed mid-flood and the surviving fleet must keep
// answering:
//
//	hubq -replicas :9001,:9002,:9003 -name smoke -flood 100000 -vertices 10000
//
// Exit status is non-zero if the flood ends with zero successes.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hublab/internal/graph"
	"hublab/internal/hubclient"
	"hublab/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	replicas := flag.String("replicas", "", "comma-separated binary-door addresses (required)")
	name := flag.String("name", "", "client identity sent to the fleet's admission controllers")
	pool := flag.Int("pool", 0, "connections per replica (0 = client default)")
	maxBatch := flag.Int("maxbatch", 0, "max queries per frame (0 = client default)")
	timeout := flag.Duration("timeout", 0, "per-request deadline (0 = client default)")
	hedge := flag.Duration("hedge", 0, "hedge to another replica after this long without an answer (0 = off)")
	flood := flag.Int("flood", 0, "flood mode: issue this many random distance queries and report throughput")
	concurrency := flag.Int("concurrency", 8, "flood worker goroutines")
	vertices := flag.Int("vertices", 0, "flood vertex bound: queries draw from [0,vertices) (required with -flood)")
	seed := flag.Int64("seed", 1, "flood query seed")
	flag.Parse()
	if *replicas == "" {
		return fmt.Errorf("hubq: -replicas is required")
	}
	cl, err := hubclient.New(hubclient.Options{
		Replicas:   strings.Split(*replicas, ","),
		Name:       *name,
		PoolSize:   *pool,
		MaxBatch:   *maxBatch,
		Timeout:    *timeout,
		HedgeAfter: *hedge,
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	if *flood > 0 {
		if *vertices <= 0 {
			return fmt.Errorf("hubq: -flood needs -vertices")
		}
		return runFlood(cl, *flood, *concurrency, *vertices, *seed)
	}
	return serveLines(cl, os.Stdin, os.Stdout)
}

// serveLines answers query lines from in until EOF or "quit", in input
// order, with the same grammar and answer lines as hubserve's line
// door — so a fleet's answers diff cleanly against a single node's.
func serveLines(cl *hubclient.Client, in io.Reader, out io.Writer) error {
	w := bufio.NewWriter(out)
	defer w.Flush()
	sc := bufio.NewScanner(in)
	var pathBuf []graph.NodeID
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if line == "quit" {
			break
		}
		pathBuf = serveLine(cl, line, pathBuf, w)
		if err := w.Flush(); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	st := cl.Stats()
	fmt.Fprintf(os.Stderr, "hubq: %d queries in %d frames (%d retries, %d hedges, %d hedge wins, %d pool-exhausted, %d transport errors)\n",
		st.Queries, st.Frames, st.Retries, st.Hedges, st.HedgeWins, st.PoolExhausted, st.TransportErrors)
	return nil
}

// serveLine parses and answers one protocol line, returning the
// (possibly regrown) path buffer for reuse.
func serveLine(cl *hubclient.Client, line string, pathBuf []graph.NodeID, w io.Writer) []graph.NodeID {
	fields := strings.Fields(line)
	atoi := func(s string) (int, bool) {
		x, err := strconv.Atoi(s)
		return x, err == nil && x >= 0
	}
	switch {
	case len(fields) == 3 && fields[0] == "PATH":
		u, okU := atoi(fields[1])
		v, okV := atoi(fields[2])
		if !okU || !okV {
			fmt.Fprintf(w, "error: bad query %q (want: PATH u v)\n", line)
			return pathBuf
		}
		path, err := cl.Path(graph.NodeID(u), graph.NodeID(v), pathBuf[:0])
		pathBuf = path
		switch {
		case failLine(w, err):
		case len(path) == 0:
			fmt.Fprintf(w, "path %d %d inf\n", u, v)
		default:
			fmt.Fprintf(w, "path %d %d", u, v)
			for _, x := range path {
				fmt.Fprintf(w, " %d", x)
			}
			fmt.Fprintf(w, "\n")
		}
	case len(fields) == 2 && fields[0] == "ECC":
		v, okV := atoi(fields[1])
		if !okV {
			fmt.Fprintf(w, "error: bad query %q (want: ECC v)\n", line)
			return pathBuf
		}
		far, ecc, err := cl.Eccentricity(graph.NodeID(v))
		if !failLine(w, err) {
			fmt.Fprintf(w, "ecc %d %d %d\n", v, ecc, far)
		}
	case len(fields) == 2:
		u, okU := atoi(fields[0])
		v, okV := atoi(fields[1])
		if !okU || !okV {
			fmt.Fprintf(w, "error: bad query %q (want: u v)\n", line)
			return pathBuf
		}
		d, err := cl.Distance(graph.NodeID(u), graph.NodeID(v))
		switch {
		case failLine(w, err):
		case d >= graph.Infinity:
			fmt.Fprintf(w, "%d %d inf\n", u, v)
		default:
			fmt.Fprintf(w, "%d %d %d\n", u, v, d)
		}
	default:
		fmt.Fprintf(w, "error: bad query %q (want: u v | PATH u v | ECC v)\n", line)
	}
	return pathBuf
}

// failLine writes the answer line for a failed query and reports
// whether err was non-nil. The BUSY/TIMEOUT vocabulary matches
// hubserve's line door; everything else is an error line.
func failLine(w io.Writer, err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, wire.ErrOverloaded):
		fmt.Fprintf(w, "BUSY\n")
	case errors.Is(err, wire.ErrTimeout), errors.Is(err, hubclient.ErrDeadline):
		fmt.Fprintf(w, "TIMEOUT\n")
	case errors.Is(err, wire.ErrUnsupported):
		fmt.Fprintf(w, "error: query kind unsupported by the served index\n")
	default:
		fmt.Fprintf(w, "error: %v\n", err)
	}
	return true
}

// runFlood hammers the fleet with total random distance queries from
// workers goroutines and prints an outcome census. It succeeds as long
// as at least one query was answered — the fleet chaos smoke kills a
// replica mid-flood and asserts on the census lines afterwards.
func runFlood(cl *hubclient.Client, total, workers, vertices int, seed int64) error {
	if workers < 1 {
		workers = 1
	}
	var (
		next    atomic.Int64
		ok      atomic.Int64
		busy    atomic.Int64
		timeout atomic.Int64
		failed  atomic.Int64
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for next.Add(1) <= int64(total) {
				u := graph.NodeID(rng.Intn(vertices))
				v := graph.NodeID(rng.Intn(vertices))
				_, err := cl.Distance(u, v)
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, wire.ErrOverloaded):
					busy.Add(1)
				case errors.Is(err, wire.ErrTimeout), errors.Is(err, hubclient.ErrDeadline):
					timeout.Add(1)
				default:
					failed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	st := cl.Stats()
	fmt.Printf("flood: %d queries in %v (%.0f q/s): %d ok, %d busy, %d timeout, %d failed\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(),
		ok.Load(), busy.Load(), timeout.Load(), failed.Load())
	fmt.Printf("client: %d frames (%.1f queries/frame), %d retries, %d hedges (%d wins), %d late drops, %d pool-exhausted, %d transport errors\n",
		st.Frames, float64(st.Queries)/float64(max(st.Frames, 1)), st.Retries,
		st.Hedges, st.HedgeWins, st.LateDrops, st.PoolExhausted, st.TransportErrors)
	if ok.Load() == 0 {
		return fmt.Errorf("hubq: flood finished with zero successful queries")
	}
	return nil
}
