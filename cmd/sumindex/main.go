// Command sumindex runs the Theorem 1.6 Sum-Index protocol: it plants a
// random bit string into G'_{b,ℓ}, executes the simultaneous-messages
// protocol for every index pair, and reports correctness and message sizes.
//
// Usage:
//
//	sumindex -b 2 -l 2 -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"hublab/internal/sumindex"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	b := flag.Int("b", 2, "side-length exponent")
	l := flag.Int("l", 2, "levels")
	seed := flag.Int64("seed", 7, "instance seed")
	flag.Parse()

	gp, err := sumindex.NewGraphProtocol(*b, *l)
	if err != nil {
		return err
	}
	m := gp.M()
	rng := rand.New(rand.NewSource(*seed))
	bits := make([]bool, m)
	for i := range bits {
		bits[i] = rng.Intn(2) == 1
	}
	in := sumindex.NewInstance(bits)
	fmt.Printf("Sum-Index over m=%d bits via G'_{%d,%d}\n", m, *b, *l)

	sess, err := gp.NewSession(in)
	if err != nil {
		return err
	}
	pairs, maxBits, err := sess.VerifyAll(in)
	if err != nil {
		return err
	}
	fmt.Printf("referee correct on all %d index pairs\n", pairs)
	fmt.Printf("max message size: %d bits\n", maxBits)
	tr, err := sumindex.Trivial(in, 0, 1)
	if err != nil {
		return err
	}
	fmt.Printf("trivial protocol baseline: alice %d bits, bob %d bits\n", tr.AliceBits, tr.BobBits)
	return nil
}
