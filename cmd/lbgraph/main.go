// Command lbgraph generates and inspects the paper's lower-bound graphs
// H_{b,ℓ} and G_{b,ℓ} (Theorem 2.1).
//
// Usage:
//
//	lbgraph -b 2 -l 2            # summary of H and certificate
//	lbgraph -b 2 -l 2 -expand    # also build the degree-3 expansion
//	lbgraph -b 2 -l 2 -verify    # exhaustive Lemma 2.2 verification
//	lbgraph -b 2 -l 2 -out h.gr  # write H to a file
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hublab/internal/lbound"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	b := flag.Int("b", 2, "side-length exponent (s = 2^b)")
	l := flag.Int("l", 2, "number of ascending levels")
	expand := flag.Bool("expand", false, "build the max-degree-3 expansion G_{b,l}")
	verify := flag.Bool("verify", false, "exhaustively verify Lemma 2.2 on H")
	out := flag.String("out", "", "write H_{b,l} to this file")
	flag.Parse()

	p := lbound.Params{B: *b, L: *l}
	h, err := lbound.BuildH(p)
	if err != nil {
		return err
	}
	fmt.Printf("H_{%d,%d}: n=%d m=%d A=%d side=%d layer=%d levels=%d\n",
		*b, *l, h.G.NumNodes(), h.G.NumEdges(), h.A, p.Side(), p.LayerSize(), p.Levels())
	cert := h.CertificateH()
	fmt.Printf("certificate: triplets=%.0f hop-bound=%d avg-hub lower bound=%.4f\n",
		cert.Triplets, cert.HopBound, cert.AvgHubLB)

	if *verify {
		checked, bad, err := h.VerifyLemma22All()
		if err != nil {
			return err
		}
		if bad != nil {
			return fmt.Errorf("Lemma 2.2 violated: %+v", *bad)
		}
		fmt.Printf("Lemma 2.2: all %d valid (x,z) pairs verified\n", checked)
	}
	if *expand {
		e, err := lbound.Expand(h)
		if err != nil {
			return err
		}
		fmt.Printf("G_{%d,%d}: n=%d m=%d max-degree=%d (aux=%d tree=%d)\n",
			*b, *l, e.G.NumNodes(), e.G.NumEdges(), e.G.MaxDegree(),
			e.AuxVertices, e.TreeVertices)
		gc := e.CertificateG()
		fmt.Printf("G certificate: avg-hub lower bound=%.3g (hop bound %d)\n",
			gc.AvgHubLB, gc.HopBound)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := h.G.WriteTo(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}
