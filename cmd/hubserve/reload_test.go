package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/index"
	"hublab/internal/pll"
	"hublab/internal/server"
)

// reloadFixture builds two different aligned containers covering the
// same graph (PLL under two vertex orders: different labels, identical
// exact answers) and returns the serving path primed with the first,
// plus the second for the swap, plus the graph.
func reloadFixture(t *testing.T) (servingPath, nextPath string, g *graph.Graph) {
	t.Helper()
	g, err := gen.Gnm(200, 380, 23)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(name string, order pll.Order) string {
		l, err := pll.Build(g, pll.Options{Order: order, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Freeze().WriteContainer(f, hub.ContainerOptions{Aligned: true}); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	return write("serving.hli", pll.OrderDegree), write("next.hli", pll.OrderRandom), g
}

// TestHTTPReload drives the hot-swap door end to end: identical answers
// before and after a reload to a different container of the same graph,
// method and failure handling, and the previous index surviving a bad
// replacement.
func TestHTTPReload(t *testing.T) {
	servingPath, nextPath, g := reloadFixture(t)
	load := func() (*index.HubLabels, error) { return index.LoadMmap(servingPath) }
	idx, err := load()
	if err != nil {
		t.Fatal(err)
	}
	if idx.Owned() {
		t.Fatal("fixture did not produce a view")
	}
	srv := server.New(idx, server.Options{Shards: 2, OwnIndex: true})
	defer srv.Close()
	rl := &reloader{load: load, srv: srv, g: g, selfcheck: 50}
	mux := newMux(srv, rl)

	get := func(url string) (int, string) {
		req := httptest.NewRequest("GET", url, nil)
		req.RemoteAddr = "10.0.0.9:1234"
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}
	post := func(url string) (int, string) {
		req := httptest.NewRequest("POST", url, nil)
		req.RemoteAddr = "10.0.0.9:1234"
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}

	queries := []string{"/distance?u=0&v=17", "/distance?u=3&v=199", "/distance?u=40&v=41"}
	before := make([]string, len(queries))
	for i, q := range queries {
		code, body := get(q)
		if code != 200 {
			t.Fatalf("%s = %d before reload", q, code)
		}
		before[i] = body
	}

	// GET is refused — reload is a state change.
	if code, _ := get("/reload"); code != 405 {
		t.Fatalf("GET /reload = %d, want 405", code)
	}

	// Atomic-rename replacement, then reload: answers must be identical
	// (different labels, same exact metric, pinned by the selfcheck too).
	if err := os.Rename(nextPath, servingPath); err != nil {
		t.Fatal(err)
	}
	code, body := post("/reload")
	if code != 200 || !strings.Contains(body, `"reloaded":true`) {
		t.Fatalf("POST /reload = %d %q", code, body)
	}
	for i, q := range queries {
		if code, got := get(q); code != 200 || got != before[i] {
			t.Fatalf("%s after reload = %d %q, want %q", q, code, got, before[i])
		}
	}

	// A corrupt replacement is rejected with the cause; the previous
	// index keeps serving. The garbage arrives by atomic rename like any
	// replacement must — an in-place overwrite would truncate the inode
	// the live index is mapped from (the exact hazard the rename rule in
	// the docs exists for).
	garbage := filepath.Join(filepath.Dir(servingPath), "garbage.hli")
	if err := os.WriteFile(garbage, []byte("not a container"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(garbage, servingPath); err != nil {
		t.Fatal(err)
	}
	if code, body := post("/reload"); code != 500 || !strings.Contains(body, "reload failed") {
		t.Fatalf("POST /reload on garbage = %d %q, want 500", code, body)
	}
	for i, q := range queries {
		if code, got := get(q); code != 200 || got != before[i] {
			t.Fatalf("%s after failed reload = %d %q, want %q", q, code, got, before[i])
		}
	}
}

// TestReloadCooldownAnswers429: the HTTP door is rate-limited — a
// reload is expensive and unauthenticated, so attempts inside the
// cooldown window bounce with 429 + Retry-After without touching the
// container; the SIGHUP door (rl.reload) bypasses the cooldown.
func TestReloadCooldownAnswers429(t *testing.T) {
	servingPath, _, _ := reloadFixture(t)
	load := func() (*index.HubLabels, error) { return index.LoadMmap(servingPath) }
	idx, err := load()
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(idx, server.Options{Shards: 1, OwnIndex: true})
	defer srv.Close()
	rl := &reloader{load: load, srv: srv, cooldown: time.Hour}
	mux := newMux(srv, rl)

	post := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", "/reload", nil)
		req.RemoteAddr = "10.0.0.9:1234"
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		return rec
	}
	if rec := post(); rec.Code != 200 {
		t.Fatalf("first POST /reload = %d %q", rec.Code, rec.Body.String())
	}
	rec := post()
	if rec.Code != 429 || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("POST /reload inside cooldown = %d (Retry-After %q), want 429",
			rec.Code, rec.Header().Get("Retry-After"))
	}
	// SIGHUP-equivalent reloads are privileged and exempt.
	if _, err := rl.reload(); err != nil {
		t.Fatalf("SIGHUP reload inside cooldown: %v", err)
	}
}

// TestReloadRejectsVertexMismatch: with a reference graph configured, a
// replacement container covering a different vertex count must be
// refused (and released) rather than swapped in.
func TestReloadRejectsVertexMismatch(t *testing.T) {
	g, err := gen.Gnm(50, 90, 3)
	if err != nil {
		t.Fatal(err)
	}
	small, err := index.Build(index.KindHubLabels, g, index.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(small, server.Options{Shards: 1})
	defer srv.Close()

	big, err := gen.Gnm(60, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	rl := &reloader{
		load: func() (*index.HubLabels, error) {
			bigIdx, err := index.Build(index.KindHubLabels, big, index.Options{})
			if err != nil {
				return nil, err
			}
			return bigIdx.(*index.HubLabels), nil
		},
		srv: srv,
		g:   g,
	}
	if _, err := rl.reload(); err == nil {
		t.Fatal("reload accepted a container of the wrong vertex count")
	}
	if n := srv.Meta().Vertices; n != 50 {
		t.Fatalf("served index changed to n=%d after a rejected reload", n)
	}
}

// TestReloadUnderLineProtocol: a SIGHUP-style reload between line
// queries keeps the stream coherent (the vertex bound is re-read per
// line).
func TestReloadUnderLineProtocol(t *testing.T) {
	servingPath, nextPath, _ := reloadFixture(t)
	load := func() (*index.HubLabels, error) { return index.LoadMmap(servingPath) }
	idx, err := load()
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(idx, server.Options{Shards: 1, OwnIndex: true})
	defer srv.Close()
	rl := &reloader{load: load, srv: srv}

	var out1 strings.Builder
	if err := serveLines(srv, strings.NewReader("0 17\nquit\n"), &out1, nil); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(nextPath, servingPath); err != nil {
		t.Fatal(err)
	}
	if _, err := rl.reload(); err != nil {
		t.Fatal(err)
	}
	var out2 strings.Builder
	if err := serveLines(srv, strings.NewReader("0 17\nquit\n"), &out2, nil); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatalf("line answers changed across reload: %q vs %q", out1.String(), out2.String())
	}
}
