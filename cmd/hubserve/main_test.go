package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hublab/internal/index/indextest"
	"hublab/internal/server"
)

// TestHTTPDistanceAndValidation pins the HTTP door's answers: valid
// queries, unreachable pairs, and the out-of-range / malformed requests
// that used to reach the index and panic.
func TestHTTPDistanceAndValidation(t *testing.T) {
	srv := server.New(&indextest.Fixed{N: 100}, server.Options{Shards: 1})
	defer srv.Close()
	mux := newMux(srv, nil)
	for _, tc := range []struct {
		url  string
		code int
		body string
	}{
		{"/distance?u=3&v=17", http.StatusOK, `{"u":3,"v":17,"distance":14}`},
		{"/distance?u=0&v=0", http.StatusOK, `{"u":0,"v":0,"distance":0}`},
		{"/distance?u=-1&v=3", http.StatusBadRequest, ""},
		{"/distance?u=3&v=100", http.StatusBadRequest, ""},
		{"/distance?u=99999999&v=3", http.StatusBadRequest, ""},
		{"/distance?u=abc&v=3", http.StatusBadRequest, ""},
		{"/distance?u=3", http.StatusBadRequest, ""},
		{"/healthz", http.StatusOK, "ok"},
	} {
		req := httptest.NewRequest("GET", tc.url, nil)
		req.RemoteAddr = "10.0.0.9:1234"
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != tc.code {
			t.Errorf("%s: code = %d, want %d", tc.url, rec.Code, tc.code)
		}
		if tc.body != "" && !strings.Contains(rec.Body.String(), tc.body) {
			t.Errorf("%s: body = %q, want %q", tc.url, rec.Body.String(), tc.body)
		}
	}
}

// TestHTTPOverloadAnswers429 saturates a single blocked worker behind a
// depth-1 queue and checks overflow requests get 429 + Retry-After
// instead of blocking the handler (the old door blocked forever).
func TestHTTPOverloadAnswers429(t *testing.T) {
	release := make(chan struct{})
	srv := server.New(&indextest.Fixed{N: 100, Gate: release}, server.Options{Shards: 1, QueueDepth: 1})
	defer srv.Close()
	mux := newMux(srv, nil)
	const attempts = 12
	codes := make(chan int, attempts)
	var retryAfter atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest("GET", fmt.Sprintf("/distance?u=0&v=%d", i%100), nil)
			req.RemoteAddr = fmt.Sprintf("10.0.0.%d:999", i)
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, req)
			if rec.Code == http.StatusTooManyRequests && rec.Header().Get("Retry-After") != "" {
				retryAfter.Add(1)
			}
			codes <- rec.Code
		}(i)
	}
	// The worker absorbs one coalesced group (≤3) plus one queue slot;
	// wait for the guaranteed rejections before opening the gate.
	deadline := time.After(10 * time.Second)
	for {
		st := srv.Stats()
		if st.Rejected >= attempts-4 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("stuck at %d rejections, want ≥ %d", st.Rejected, attempts-4)
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	wg.Wait()
	close(codes)
	var ok, busy int
	for c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			busy++
		default:
			t.Errorf("unexpected status %d", c)
		}
	}
	if busy < attempts-4 {
		t.Errorf("%d of %d answered 429, want ≥ %d", busy, attempts, attempts-4)
	}
	if ok+busy != attempts {
		t.Errorf("ok %d + busy %d != %d attempts", ok, busy, attempts)
	}
	if retryAfter.Load() != uint64(busy) {
		t.Errorf("%d of %d 429s carried Retry-After", retryAfter.Load(), busy)
	}
}

// TestHTTPSlowlorisDoesNotBlockHealthz starts the real hubserve
// http.Server (with its per-phase timeouts scaled down) and checks that
// a client stalled mid-header neither blocks /healthz nor holds its
// connection past ReadHeaderTimeout.
func TestHTTPSlowlorisDoesNotBlockHealthz(t *testing.T) {
	srv := server.New(&indextest.Fixed{N: 100}, server.Options{Shards: 1})
	defer srv.Close()
	to := httpTimeouts{
		readHeader: 300 * time.Millisecond,
		read:       500 * time.Millisecond,
		write:      500 * time.Millisecond,
		idle:       500 * time.Millisecond,
	}
	hs := newHTTPServer(srv, nil, "127.0.0.1:0", to)
	ln, err := net.Listen("tcp", hs.Addr)
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	defer hs.Close()
	addr := ln.Addr().String()

	// The slowloris connection: open, send half a request line, stall.
	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	if _, err := stalled.Write([]byte("GET /distance?u=0&v=1 HTTP/1.1\r\nHost: x\r\n")); err != nil {
		t.Fatal(err)
	}

	// While it stalls, /healthz must answer promptly.
	hc := &http.Client{Timeout: 2 * time.Second}
	resp, err := hc.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("healthz while slowloris active: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d while slowloris active", resp.StatusCode)
	}

	// And the stalled connection must be torn down by ReadHeaderTimeout,
	// not held forever: draining it must reach EOF (any timeout response
	// the server writes first counts as teardown too) well before the
	// read deadline.
	stalled.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.Copy(io.Discard, stalled); err != nil {
		t.Fatalf("stalled connection not closed after ReadHeaderTimeout (drain err = %v)", err)
	}
}

// TestDefaultTimeoutsConfigured pins that the production HTTP server
// actually carries the anti-slowloris timeouts.
func TestDefaultTimeoutsConfigured(t *testing.T) {
	srv := server.New(&indextest.Fixed{N: 10}, server.Options{Shards: 1})
	defer srv.Close()
	hs := newHTTPServer(srv, nil, ":0", defaultHTTPTimeouts)
	if hs.ReadHeaderTimeout <= 0 || hs.ReadTimeout <= 0 || hs.WriteTimeout <= 0 || hs.IdleTimeout <= 0 {
		t.Fatalf("missing timeouts: header=%v read=%v write=%v idle=%v",
			hs.ReadHeaderTimeout, hs.ReadTimeout, hs.WriteTimeout, hs.IdleTimeout)
	}
}

// TestServeLines drives the line protocol through malformed, hostile
// and valid queries — the out-of-range ones used to panic the process
// inside the index.
func TestServeLines(t *testing.T) {
	srv := server.New(&indextest.Fixed{N: 50}, server.Options{Shards: 1})
	defer srv.Close()
	in := strings.NewReader("3 17\n\nbad line\n1 2 3\n-1 5\n5 50\n0 0\nquit\n9 9\n")
	var out strings.Builder
	if err := serveLines(srv, in, &out, nil); err != nil {
		t.Fatalf("serveLines: %v", err)
	}
	want := []string{
		"3 17 14",
		`error: bad query "bad line" (want: u v)`,
		`error: bad query "1 2 3" (want: u v | PATH u v | ECC v)`,
		"error: vertex out of range [0,50)",
		"error: vertex out of range [0,50)",
		"0 0 0",
	}
	got := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(got) != len(want) {
		t.Fatalf("serveLines wrote %d lines %q, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestServeLinesBusy checks the line door answers BUSY (not a hang, not
// a panic) when the queue is saturated. The saturation is deterministic:
// one filler occupies the worker behind the gate, a second verifiably
// occupies the single queue slot (Stats().Queued), and the worker cannot
// drain it until the gate opens — so every line query must bounce.
func TestServeLinesBusy(t *testing.T) {
	release := make(chan struct{})
	gate := &indextest.Fixed{N: 10, Gate: release}
	srv := server.New(gate, server.Options{Shards: 1, QueueDepth: 1})
	defer srv.Close()
	var wg sync.WaitGroup
	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.After(10 * time.Second)
		for !cond() {
			select {
			case <-deadline:
				close(release)
				wg.Wait()
				t.Fatalf("timed out waiting for %s", desc)
			case <-time.After(time.Millisecond):
			}
		}
	}
	// Filler 1: absorbed alone into a worker group, blocks on the gate.
	wg.Add(1)
	go func() { defer wg.Done(); srv.TryQuery("filler", 0, 1) }()
	waitFor("worker to pick up filler 1", func() bool { return gate.Started.Load() == 1 })
	// Filler 2: takes the single queue slot; the worker is blocked inside
	// its current group, so the slot stays taken until the gate opens.
	wg.Add(1)
	go func() { defer wg.Done(); srv.TryQuery("filler", 0, 1) }()
	waitFor("filler 2 to occupy the queue slot", func() bool { return srv.Stats().Queued == 1 })

	in := strings.NewReader("1 2\n3 4\n5 6\nquit\n")
	var out strings.Builder
	if err := serveLines(srv, in, &out, nil); err != nil {
		t.Fatalf("serveLines: %v", err)
	}
	close(release)
	wg.Wait()
	got := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(got) != 3 {
		t.Fatalf("serveLines wrote %q, want 3 lines", got)
	}
	for i, line := range got {
		if line != "BUSY" {
			t.Errorf("line %d = %q, want BUSY", i, line)
		}
	}
	if st := srv.Stats(); st.Rejected < 3 {
		t.Errorf("Stats.Rejected = %d, want ≥ 3", st.Rejected)
	}
}
