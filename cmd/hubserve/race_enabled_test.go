//go:build race

package main

// raceEnabled reports whether the race detector is compiled in.
// Race-mode sync.Pool intentionally drops a fraction of Puts, so
// allocation counts on pooled paths are meaningless under -race.
const raceEnabled = true
