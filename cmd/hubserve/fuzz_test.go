package main

import (
	"strings"
	"sync"
	"testing"

	"hublab/internal/gen"
	"hublab/internal/index"
	"hublab/internal/server"
)

// fuzzServer lazily builds one shared serving stack for the fuzzer: a
// small real hub-labels index (so PATH/ECC verbs hit live code paths)
// behind a server without admission control, so sequential line traffic
// is served deterministically (nothing can fill a depth-64 queue one
// request at a time).
var fuzzSrv struct {
	once sync.Once
	srv  *server.Server
	n    int
}

func fuzzServing(tb testing.TB) (*server.Server, int) {
	fuzzSrv.once.Do(func() {
		g, err := gen.Gnm(60, 110, 13)
		if err != nil {
			tb.Fatal(err)
		}
		idx, err := index.Build(index.KindHubLabels, g, index.Options{})
		if err != nil {
			tb.Fatal(err)
		}
		fuzzSrv.srv = server.New(idx, server.Options{Shards: 1})
		fuzzSrv.n = g.NumNodes()
	})
	return fuzzSrv.srv, fuzzSrv.n
}

// FuzzLineProtocol hammers the line door with arbitrary bytes: the server
// must never panic, must answer every well-formed line, and must be
// deterministic — the same input replayed twice yields byte-identical
// output (admission is off, so no probabilistic shedding).
func FuzzLineProtocol(f *testing.F) {
	for _, seed := range []string{
		"0 1\n",
		"3 17\n59 0\nquit\n",
		"PATH 0 59\n",
		"PATH 5 5\nPATH 0 1\n",
		"ECC 3\nECC 0\n",
		"PATH 0\nPATH x y\nECC\nECC zz\n",
		"PATH -1 2\nECC 999\n",
		"1 2 3\n-5 7\nbad line\n\n\n",
		"quit\nPATH 0 1\n",
		"PATH 0 1 2\nECC 1 2\n",
		"\x00\x01\xff\n",
		strings.Repeat("0 1\n", 50),
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		srv, _ := fuzzServing(t)
		var out1, out2 strings.Builder
		err1 := serveLines(srv, strings.NewReader(string(data)), &out1, nil)
		err2 := serveLines(srv, strings.NewReader(string(data)), &out2, nil)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic error: %v vs %v", err1, err2)
		}
		if out1.String() != out2.String() {
			t.Fatalf("nondeterministic output:\n%q\nvs\n%q", out1.String(), out2.String())
		}
	})
}
