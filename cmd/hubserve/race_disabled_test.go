//go:build !race

package main

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
