package main

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hublab/internal/flowctl"
	"hublab/internal/graph"
	"hublab/internal/hubclient"
	"hublab/internal/index"
	"hublab/internal/index/indextest"
	"hublab/internal/netserve"
	"hublab/internal/server"
	"hublab/internal/wire"
)

// fleetNode is one in-process replica: a query server behind a binary
// door, the same wiring `hubserve -binary` assembles.
type fleetNode struct {
	srv  *server.Server
	door *netserve.Door
	addr string
}

func startFleetNode(t *testing.T, idx index.Index, admission *flowctl.Options) *fleetNode {
	t.Helper()
	opts := server.Options{Shards: 2}
	if admission != nil {
		opts.Admission = admission
	}
	srv := server.New(idx, opts)
	door := netserve.New(srv, netserve.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go door.Serve(ln) //nolint:errcheck // returns net.ErrClosed on Close
	t.Cleanup(func() {
		door.Close()
		srv.Close()
	})
	return &fleetNode{srv: srv, door: door, addr: ln.Addr().String()}
}

// TestFleetSurvivesReplicaKill runs a 3-replica fleet under concurrent
// client load and kills one replica's door mid-run. The contract is
// the chaos gate from the fleet design: zero wrong answers ever (a
// killed connection may lose in-flight queries, never corrupt them),
// the surviving replicas keep serving, and the client's failover keeps
// the error count bounded by the in-flight window rather than
// proportional to the outage.
func TestFleetSurvivesReplicaKill(t *testing.T) {
	idx := &indextest.Fixed{N: 1 << 20, Delay: 50 * time.Microsecond}
	var addrs []string
	nodes := make([]*fleetNode, 3)
	for i := range nodes {
		nodes[i] = startFleetNode(t, idx, nil)
		addrs = append(addrs, nodes[i].addr)
	}
	cl, err := hubclient.New(hubclient.Options{
		Replicas: addrs,
		Name:     "fleet-chaos",
		Timeout:  2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const workers = 16
	deadline := time.Now().Add(400 * time.Millisecond)
	var ok, failed, wrong atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for time.Now().Before(deadline) {
				u := graph.NodeID(rng.Intn(1 << 20))
				v := graph.NodeID(rng.Intn(1 << 20))
				d, err := cl.Distance(u, v)
				if err != nil {
					failed.Add(1)
					continue
				}
				want := u - v
				if want < 0 {
					want = -want
				}
				if d != graph.Weight(want) {
					wrong.Add(1)
				} else {
					ok.Add(1)
				}
			}
		}(w)
	}

	time.Sleep(150 * time.Millisecond)
	nodes[0].door.Close() // the kill: listener and every conn die mid-run
	wg.Wait()

	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d wrong answers across the kill — a lost query may fail, never lie", n)
	}
	if ok.Load() == 0 {
		t.Fatal("no successful queries at all")
	}
	// Failover retries transport errors on the surviving replicas, so
	// only requests that exhausted their options may fail — bounded by
	// the in-flight window at the kill, not by the outage duration.
	if f := failed.Load(); f > workers+2*64 {
		t.Fatalf("%d failed queries, more than the in-flight window allows", f)
	}
	st := cl.Stats()
	if st.TransportErrors == 0 {
		t.Fatal("the kill left no transport-error trace in client stats")
	}
	t.Logf("ok=%d failed=%d retries=%d transport=%d", ok.Load(), failed.Load(), st.Retries, st.TransportErrors)
}

// TestFleetSharesShedState pins the fleet-wide admission contract: a
// flooder shed on replica A is rejected by replica B without B ever
// seeing the flood, because A's controller state gossips to its peers
// and max-merges into theirs. Polite clients are unaffected — the
// controller is per-client, and the gossip carries bucket state, not a
// global brake.
func TestFleetSharesShedState(t *testing.T) {
	idx := &indextest.Fixed{N: 4096}
	adm := func() *flowctl.Options {
		// MaxDrop 1 + Inc 1: one queue-full observation pins the drop
		// probability at 1, making the shed deterministic. All replicas
		// share Seed so bucket geometry lines up — the same requirement
		// `hubserve -peers` documents.
		return &flowctl.Options{Seed: 7, MaxDrop: 1, Inc: 1}
	}
	nodes := make([]*fleetNode, 3)
	var addrs []string
	for i := range nodes {
		nodes[i] = startFleetNode(t, idx, adm())
		addrs = append(addrs, nodes[i].addr)
	}
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	for i := range nodes {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		g := netserve.NewGossiper(nodes[i].srv.AdmissionController(), peers, 5*time.Millisecond)
		go g.Run(stop)
	}

	// The flood's verdict on A, compressed to its deterministic effect:
	// one queue-full observation against "flooder" pins its drop
	// probability at 1 on A's controller.
	nodes[0].srv.AdmissionController().OnQueueFull("flooder")

	// Gossip must carry the verdict to B and C.
	waitUntil := time.Now().Add(5 * time.Second)
	for {
		pB := nodes[1].srv.AdmissionController().Probability("flooder")
		pC := nodes[2].srv.AdmissionController().Probability("flooder")
		if pB == 1 && pC == 1 {
			break
		}
		if time.Now().After(waitUntil) {
			t.Fatalf("shed state never reached peers: B=%v C=%v", pB, pC)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The flooder is rejected by B — a replica it never flooded.
	flooder, err := hubclient.New(hubclient.Options{Replicas: []string{nodes[1].addr}, Name: "flooder"})
	if err != nil {
		t.Fatal(err)
	}
	defer flooder.Close()
	if _, err := flooder.Distance(1, 2); !errors.Is(err, wire.ErrOverloaded) {
		t.Fatalf("flooder on replica B got %v, want wire.ErrOverloaded", err)
	}

	// A polite client on the same replica is untouched.
	polite, err := hubclient.New(hubclient.Options{Replicas: []string{nodes[1].addr}, Name: "polite"})
	if err != nil {
		t.Fatal(err)
	}
	defer polite.Close()
	d, err := polite.Distance(10, 14)
	if err != nil {
		t.Fatalf("polite client rejected alongside the flooder: %v", err)
	}
	if d != 4 {
		t.Fatalf("polite client got d=%d, want 4", d)
	}
}
