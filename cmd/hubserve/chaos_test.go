package main

import (
	"errors"
	"io"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hublab/internal/faultinject"
	"hublab/internal/index"
	"hublab/internal/index/indextest"
	"hublab/internal/server"
)

// syncBuffer is a strings.Builder safe to poll from the test while the
// serve goroutine is still writing to it.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Len()
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServeLinesGracefulDrain pins the SIGTERM/SIGINT happy path for
// the line protocol: with the client idle (reader blocked on a pipe),
// closing the stop channel ends serveLinesMain promptly and cleanly.
func TestServeLinesGracefulDrain(t *testing.T) {
	srv := server.New(&indextest.Fixed{N: 10}, server.Options{Shards: 1})
	defer srv.Close()
	pr, pw := io.Pipe()
	defer pw.Close()
	stop := make(chan struct{})
	done := make(chan error, 1)
	var out syncBuffer
	go func() { done <- serveLinesMain(srv, pr, &out, stop) }()
	// Serve one real query first so the drain happens mid-session.
	if _, err := io.WriteString(pw, "1 4\n"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for out.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful drain returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveLinesMain did not return after stop")
	}
	if got := out.String(); !strings.Contains(got, "1 4 3\n") {
		t.Fatalf("pre-drain query unanswered: %q", got)
	}
}

// TestServeLinesDrainTimeout pins the wedged-drain path: a query stuck
// in a gated backend outlives the drain window, and the process exits
// non-zero (osExit observed via stub) instead of hanging or running
// Close under a live query.
func TestServeLinesDrainTimeout(t *testing.T) {
	oldTimeout, oldExit := lineDrainTimeout, osExit
	lineDrainTimeout = 50 * time.Millisecond
	var exitCode atomic.Int64
	exitCode.Store(-1)
	osExit = func(code int) { exitCode.Store(int64(code)) }
	t.Cleanup(func() { lineDrainTimeout, osExit = oldTimeout, oldExit })

	release := make(chan struct{})
	gate := &indextest.Fixed{N: 10, Gate: release}
	srv := server.New(gate, server.Options{Shards: 1})
	stop := make(chan struct{})
	done := make(chan error, 1)
	var out syncBuffer
	go func() { done <- serveLinesMain(srv, strings.NewReader("1 4\n"), &out, stop) }()
	// Wait until the query is actually inside the backend, then drain.
	deadline := time.Now().Add(5 * time.Second)
	for gate.Started.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	select {
	case err := <-done:
		if !errors.Is(err, errDrainTimeout) {
			t.Fatalf("wedged drain returned %v, want errDrainTimeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not time out")
	}
	if exitCode.Load() != 1 {
		t.Fatalf("exit code %d, want 1", exitCode.Load())
	}
	// Unwedge and shut down for real so nothing leaks into other tests.
	close(release)
	srv.Close()
}

// TestHealthzAndStatsUnderFaults pins the HTTP fault surface: an
// injected worker panic answers 500 on the query, flips /healthz to 503
// with a reason, and shows up in the new /stats fields; an injected
// stall past -querytimeout answers 504 and is counted too.
func TestHealthzAndStatsUnderFaults(t *testing.T) {
	if err := faultinject.Enable("server.worker:panic:times=1", 3); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Disable)
	release := make(chan struct{})
	gate := &indextest.Fixed{N: 100, Gate: release}
	srv := server.New(gate, server.Options{Shards: 1, QueryTimeout: 50 * time.Millisecond})
	// LIFO: the gate must open before Close waits for the worker.
	defer srv.Close()
	defer close(release)
	mux := newMux(srv, nil)

	get := func(url string) (int, string) {
		req := httptest.NewRequest("GET", url, nil)
		req.RemoteAddr = "10.0.0.9:1234"
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}

	// The panic fires before the gate matters: the worker dies on entry.
	if code, body := get("/distance?u=3&v=17"); code != 500 {
		t.Fatalf("faulted query: %d %q, want 500", code, body)
	}
	if code, body := get("/healthz"); code != 503 || !strings.Contains(body, "degraded") {
		t.Fatalf("healthz after panic: %d %q, want 503 degraded", code, body)
	}
	// times=1 spent: the next query reaches the gated backend and times
	// out at the deadline instead.
	if code, body := get("/distance?u=3&v=17"); code != 504 {
		t.Fatalf("stalled query: %d %q, want 504", code, body)
	}
	code, body := get("/stats")
	if code != 200 {
		t.Fatalf("/stats: %d", code)
	}
	for _, want := range []string{`"panics":1`, `"faulted":1`, `"timeouts":1`, `"health":"degraded"`, `"health_reason":`} {
		if !strings.Contains(body, want) {
			t.Errorf("/stats %q missing %q", body, want)
		}
	}
}

// TestReloadQuarantinesCorrupt pins the corrupt-replacement flow: a torn
// container renamed over the serving path (the atomic-rename discipline,
// so the live mmap is untouched) fails the reload with a quarantine
// message, moves the bad file aside, and the previous index keeps
// serving exact answers.
func TestReloadQuarantinesCorrupt(t *testing.T) {
	servingPath, _, g := reloadFixture(t)
	load := func() (*index.HubLabels, error) { return index.LoadMmap(servingPath) }
	idx, err := load()
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(idx, server.Options{Shards: 1, OwnIndex: true})
	defer srv.Close()
	rl := &reloader{load: load, srv: srv, g: g, path: servingPath}
	mux := newMux(srv, rl)

	get := func(method, url string) (int, string) {
		req := httptest.NewRequest(method, url, nil)
		req.RemoteAddr = "10.0.0.9:1234"
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}
	_, before := get("GET", "/distance?u=0&v=17")

	// Tear the container the way a real torn write looks: half the valid
	// bytes, renamed into place (never truncated in place — the serving
	// side has the inode mmapped).
	good, err := os.ReadFile(servingPath)
	if err != nil {
		t.Fatal(err)
	}
	torn := servingPath + ".next"
	if err := os.WriteFile(torn, good[:len(good)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(torn, servingPath); err != nil {
		t.Fatal(err)
	}

	code, body := get("POST", "/reload")
	if code != 500 || !strings.Contains(body, "quarantined") {
		t.Fatalf("corrupt reload: %d %q, want 500 mentioning quarantine", code, body)
	}
	if _, err := os.Stat(servingPath); !os.IsNotExist(err) {
		t.Fatalf("corrupt container still at %s", servingPath)
	}
	if _, err := os.Stat(servingPath + ".quarantined"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	// The previous index keeps serving, byte-identically.
	if code, after := get("GET", "/distance?u=0&v=17"); code != 200 || after != before {
		t.Fatalf("previous index stopped serving after corrupt reload: %d %q vs %q", code, after, before)
	}
	// A second reload now fails on a missing file — and must NOT try to
	// quarantine again (nothing to move).
	if code, body := get("POST", "/reload"); code != 500 || strings.Contains(body, "quarantined") {
		t.Fatalf("missing-file reload: %d %q", code, body)
	}
}
