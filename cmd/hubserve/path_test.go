package main

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/index"
	"hublab/internal/index/indextest"
	"hublab/internal/server"
)

// pathTestServer builds a small real hub-labels index (with parent
// column) behind a server.
func pathTestServer(t testing.TB) (*graph.Graph, *server.Server) {
	t.Helper()
	g, err := gen.Gnm(80, 150, 9)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(index.KindHubLabels, g, index.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(idx, server.Options{Shards: 1})
	t.Cleanup(srv.Close)
	return g, srv
}

// TestServeLinesPathAndEcc drives the new verbs through the line door:
// well-formed answers, strict parsing, and range checks.
func TestServeLinesPathAndEcc(t *testing.T) {
	g, srv := pathTestServer(t)
	in := strings.NewReader("PATH 0 7\nECC 3\nPATH 0\nPATH x 7\nECC -1\nPATH 0 99\nECC\nquit\n")
	var out strings.Builder
	if err := serveLines(srv, in, &out, nil); err != nil {
		t.Fatalf("serveLines: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 7 {
		t.Fatalf("got %d lines %q, want 7", len(lines), lines)
	}
	// Line 0: a path from 0 to 7 — validate it against the graph.
	fields := strings.Fields(lines[0])
	if len(fields) < 4 || fields[0] != "path" || fields[1] != "0" || fields[2] != "7" {
		t.Fatalf("path line = %q", lines[0])
	}
	var path []graph.NodeID
	for _, f := range fields[3:] {
		x, err := strconv.Atoi(f)
		if err != nil {
			t.Fatalf("path line has non-integer %q", f)
		}
		path = append(path, graph.NodeID(x))
	}
	d, err := srv.TryQuery("t", 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if msg := indextest.CheckPath(g, 0, 7, path, d); msg != "" {
		t.Fatalf("line-door path invalid: %s", msg)
	}
	// Line 1: ecc with farthest; spot-check the distance equation.
	fields = strings.Fields(lines[1])
	if len(fields) != 4 || fields[0] != "ecc" || fields[1] != "3" {
		t.Fatalf("ecc line = %q", lines[1])
	}
	ecc, _ := strconv.Atoi(fields[2])
	far, _ := strconv.Atoi(fields[3])
	if fd, err := srv.TryQuery("t", 3, graph.NodeID(far)); err != nil || int(fd) != ecc {
		t.Fatalf("ecc line inconsistent: d(3,%d)=%d/%v, ecc %d", far, fd, err, ecc)
	}
	for i, want := range []string{
		`error: bad query "PATH 0" (want: PATH u v)`,
		`error: bad query "PATH x 7" (want: PATH u v)`,
		"error: vertex out of range [0,80)",
		"error: vertex out of range [0,80)",
		`error: bad query "ECC" (want: ECC v)`,
	} {
		if lines[2+i] != want {
			t.Errorf("line %d = %q, want %q", 2+i, lines[2+i], want)
		}
	}
}

// TestServeLinesUnsupportedVerbs: an index without the capabilities
// answers a clean error line, not a hang or panic.
func TestServeLinesUnsupportedVerbs(t *testing.T) {
	srv := server.New(&indextest.Fixed{N: 10}, server.Options{Shards: 1})
	defer srv.Close()
	in := strings.NewReader("PATH 0 5\nECC 2\nquit\n")
	var out strings.Builder
	if err := serveLines(srv, in, &out, nil); err != nil {
		t.Fatalf("serveLines: %v", err)
	}
	got := strings.Split(strings.TrimSpace(out.String()), "\n")
	want := []string{
		"error: path queries unsupported by this index",
		"error: eccentricity queries unsupported by this index",
	}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("lines = %q, want %q", got, want)
	}
}

// TestHTTPPathAndEcc exercises the new endpoints: valid answers,
// validation failures, and 501 on capability-less indexes.
func TestHTTPPathAndEcc(t *testing.T) {
	_, srv := pathTestServer(t)
	mux := newMux(srv, nil)
	do := func(url string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", url, nil)
		req.RemoteAddr = "10.0.0.9:1234"
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		return rec
	}
	if rec := do("/path?u=0&v=7"); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), `"path":[0,`) {
		t.Errorf("/path = %d %q", rec.Code, rec.Body.String())
	}
	if rec := do("/path?u=0&v=0"); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), `"path":[0]`) {
		t.Errorf("/path self = %d %q", rec.Code, rec.Body.String())
	}
	if rec := do("/ecc?v=3"); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), `"eccentricity":`) {
		t.Errorf("/ecc = %d %q", rec.Code, rec.Body.String())
	}
	for _, url := range []string{"/path?u=-1&v=3", "/path?u=abc&v=3", "/path?u=0&v=999",
		"/ecc?v=-2", "/ecc?v=abc", "/ecc"} {
		if rec := do(url); rec.Code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", url, rec.Code)
		}
	}

	fixed := server.New(&indextest.Fixed{N: 10}, server.Options{Shards: 1})
	defer fixed.Close()
	muxFixed := newMux(fixed, nil)
	for _, url := range []string{"/path?u=0&v=5", "/ecc?v=2"} {
		req := httptest.NewRequest("GET", url, nil)
		req.RemoteAddr = "10.0.0.9:1234"
		rec := httptest.NewRecorder()
		muxFixed.ServeHTTP(rec, req)
		if rec.Code != http.StatusNotImplemented {
			t.Errorf("%s on fixed index = %d, want 501", url, rec.Code)
		}
	}
}

// brokenPaths is a path-capable index whose unpacking always fails — the
// stand-in for an inconsistent parent column that passed structural
// validation.
type brokenPaths struct{ indextest.Fixed }

func (b *brokenPaths) AppendPath(dst []graph.NodeID, u, v graph.NodeID) ([]graph.NodeID, error) {
	return dst, errors.New("synthetic unpack failure")
}

// TestHTTPPathErrorIsNot503: a persistent path-query failure must answer
// 500 with the cause, not masquerade as a 503 shutdown (which load
// balancers would retry forever while /healthz stays green).
func TestHTTPPathErrorIsNot503(t *testing.T) {
	srv := server.New(&brokenPaths{indextest.Fixed{N: 10}}, server.Options{Shards: 1})
	defer srv.Close()
	mux := newMux(srv, nil)
	req := httptest.NewRequest("GET", "/path?u=0&v=5", nil)
	req.RemoteAddr = "10.0.0.9:1234"
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("/path with failing backend = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "synthetic unpack failure") {
		t.Fatalf("500 body %q does not carry the cause", rec.Body.String())
	}
}
