package main

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hublab/internal/flowctl"
	"hublab/internal/graph"
	"hublab/internal/index/indextest"
	"hublab/internal/server"
)

// shedServer builds a server whose admission controller deterministically
// sheds every request from "flooder": MaxDrop 1 + Inc 1 means a single
// queue-full observation pins that client's drop probability at 1.
func shedServer(t *testing.T) *server.Server {
	t.Helper()
	srv := server.New(&indextest.Fixed{N: 64}, server.Options{
		Shards:    1,
		Admission: &flowctl.Options{MaxDrop: 1, Inc: 1},
	})
	t.Cleanup(srv.Close)
	srv.AdmissionController().OnQueueFull("flooder")
	if p := srv.AdmissionController().Probability("flooder"); p != 1 {
		t.Fatalf("flooder drop probability %v, want 1", p)
	}
	return srv
}

// TestServeLineShedZeroAlloc pins that rejecting a flooded line-protocol
// query costs the server zero heap allocations: the line is split into a
// stack array (not strings.Fields), the admission verdict comes from the
// lock-free controller, and the BUSY answer is a constant write. A
// per-shed allocation would hand a flooding client a memory-pressure
// lever precisely when the server is trying to shed it.
func TestServeLineShedZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts; allocation counts are meaningless")
	}
	srv := shedServer(t)
	n := srv.Meta().Vertices

	// Prove the path under measurement actually answers BUSY.
	var probe bytes.Buffer
	var pathBuf []graph.NodeID
	serveLine(srv, "flooder", n, "3 9", &pathBuf, &probe)
	serveLine(srv, "flooder", n, "PATH 3 9", &pathBuf, &probe)
	serveLine(srv, "flooder", n, "ECC 3", &pathBuf, &probe)
	if got := probe.String(); got != "BUSY\nBUSY\nBUSY\n" {
		t.Fatalf("flooder answers %q, want three BUSY lines", got)
	}

	w := bufio.NewWriter(io.Discard)
	for _, line := range []string{"3 9", "PATH 3 9", "ECC 3"} {
		allocs := testing.AllocsPerRun(200, func() {
			serveLine(srv, "flooder", n, line, &pathBuf, w)
			w.Reset(io.Discard)
		})
		if allocs != 0 {
			t.Errorf("shedding %q costs %v allocs/op, want 0", line, allocs)
		}
	}
}

// nullResponseWriter is a ResponseWriter with a persistent header map
// and discarded body, so measured allocations belong to the handler
// under test rather than the recorder.
type nullResponseWriter struct {
	h    http.Header
	code int
}

func (w *nullResponseWriter) Header() http.Header         { return w.h }
func (w *nullResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nullResponseWriter) WriteHeader(code int)        { w.code = code }

// WriteString matches the io.StringWriter fast path the real
// net/http response writer provides — without it, io.WriteString's
// []byte fallback would charge the measurement a conversion the
// production path never pays.
func (w *nullResponseWriter) WriteString(s string) (int, error) { return len(s), nil }

// TestHTTPShedZeroAlloc pins the 429 path of every HTTP query endpoint
// at zero handler allocations: parameters are parsed straight from
// RawQuery (no url.Values map), the Retry-After and Content-Type
// headers are shared slices, and the body is a constant.
func TestHTTPShedZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts; allocation counts are meaningless")
	}
	srv := shedServer(t)
	mux := newMux(srv, nil)

	for _, target := range []string{"/distance?u=3&v=9", "/path?u=3&v=9", "/ecc?v=3"} {
		r := httptest.NewRequest(http.MethodGet, target, nil)
		r.RemoteAddr = "flooder:9999" // clientID strips the port
		h, _ := mux.Handler(r)

		// Prove the path under measurement actually answers 429.
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("%s: flooder got %d, want 429", target, rec.Code)
		}
		if rec.Header().Get("Retry-After") != "1" {
			t.Fatalf("%s: 429 without Retry-After", target)
		}
		if !strings.Contains(rec.Body.String(), "overloaded") {
			t.Fatalf("%s: 429 body %q", target, rec.Body.String())
		}

		w := &nullResponseWriter{h: make(http.Header)}
		h.ServeHTTP(w, r) // warm the header map once
		allocs := testing.AllocsPerRun(200, func() {
			h.ServeHTTP(w, r)
		})
		if allocs != 0 {
			t.Errorf("shedding %s costs %v allocs/op, want 0", target, allocs)
		}
		if w.code != http.StatusTooManyRequests {
			t.Errorf("%s: measured path answered %d, want 429", target, w.code)
		}
	}
}

// TestQueryParam pins the no-alloc RawQuery parser against the url
// package's answer for the shapes the doors serve, plus the corner
// cases that must fail closed.
func TestQueryParam(t *testing.T) {
	cases := []struct{ raw, key, want string }{
		{"u=3&v=9", "u", "3"},
		{"u=3&v=9", "v", "9"},
		{"v=9", "u", ""},
		{"", "u", ""},
		{"uu=3", "u", ""},
		{"u=", "u", ""},
		{"x=1&u=42", "u", "42"},
		{"u=1&u=2", "u", "1"}, // first wins, same as url.Values.Get
	}
	for _, c := range cases {
		if got := queryParam(c.raw, c.key); got != c.want {
			t.Errorf("queryParam(%q, %q) = %q, want %q", c.raw, c.key, got, c.want)
		}
	}
}
