// Command hubserve loads a hub-labeling index container (written by
// hubgen -out) and serves exact distance queries from it — the paper's
// stored-label query structure as a running service. Queries go through
// the sharded in-process query service (internal/server): worker
// goroutines coalesce adjacent requests into interleaved-merge batches,
// and the served index sits behind an atomic snapshot.
//
// Overload degrades gracefully instead of blocking or crashing: both
// front ends submit through the server's non-blocking TryQuery door, and
// (unless -admission=false) a constant-memory fair admission controller
// (internal/flowctl) sheds load per client, so one flooding client
// cannot starve the rest.
//
// Two front ends:
//
//   - line protocol (default): one "u v" pair per stdin line, answered as
//     "u v dist" ("inf" when unreachable); "BUSY" when the request was
//     shed under overload; "quit" stops.
//   - HTTP (-http addr): GET /distance?u=U&v=V (429 + Retry-After under
//     overload, client identity = remote address), plus /stats and
//     /healthz. The server carries read/write/idle timeouts so a stalled
//     client cannot hold a handler goroutine forever.
//
// With -graph the input graph is loaded too and every served distance is
// spot-checkable: -selfcheck n verifies n random queries against
// bidirectional search before serving.
//
// Usage:
//
//	hubgen -gen gnm -n 10000 -algo pll -out labels.hli -graphout g.gr
//	echo "0 17" | hubserve -index labels.hli
//	hubserve -index labels.hli -graph g.gr -selfcheck 200
//	hubserve -index labels.hli -http :8080
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"hublab/internal/flowctl"
	"hublab/internal/graph"
	"hublab/internal/index"
	"hublab/internal/server"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	indexPath := flag.String("index", "", "index container to serve (required)")
	graphPath := flag.String("graph", "", "optional graph file for self-checking")
	httpAddr := flag.String("http", "", "serve HTTP on this address instead of the line protocol")
	workers := flag.Int("workers", 0, "shard/worker count (0 = number of CPUs)")
	queue := flag.Int("queue", 0, "per-shard queue depth (0 = default)")
	admission := flag.Bool("admission", true, "fair per-client load shedding under overload")
	simLatency := flag.Duration("simlatency", 0, "artificial per-query service time, for load and overload testing")
	selfcheck := flag.Int("selfcheck", 0, "verify this many random queries against graph search before serving (needs -graph)")
	flag.Parse()
	if *indexPath == "" {
		return fmt.Errorf("hubserve: -index is required")
	}

	start := time.Now()
	idx, err := index.Load(*indexPath)
	if err != nil {
		return err
	}
	meta := idx.Meta()
	fmt.Fprintf(os.Stderr, "loaded %s: %s n=%d space=%d bytes in %v\n",
		*indexPath, meta.Kind, meta.Vertices, idx.SpaceBytes(), time.Since(start).Round(time.Microsecond))

	var g *graph.Graph
	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			return err
		}
		g, err = graph.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		if g.NumNodes() != meta.Vertices {
			return fmt.Errorf("hubserve: graph has %d vertices, index has %d", g.NumNodes(), meta.Vertices)
		}
	}

	served := index.Index(idx)
	if *simLatency > 0 {
		served = &delayIndex{Index: idx, delay: *simLatency}
	}
	opts := server.Options{Shards: *workers, QueueDepth: *queue}
	if *admission {
		opts.Admission = &flowctl.Options{}
	}
	srv := server.New(served, opts)
	defer srv.Close()

	if *selfcheck > 0 {
		if g == nil {
			return fmt.Errorf("hubserve: -selfcheck needs -graph")
		}
		if err := index.VerifySampled(idx, g, *selfcheck, 1); err != nil {
			return fmt.Errorf("hubserve: selfcheck: %w", err)
		}
		fmt.Fprintf(os.Stderr, "selfcheck: %d random queries match graph search\n", *selfcheck)
	}

	if *httpAddr != "" {
		return serveHTTP(srv, meta.Vertices, *httpAddr)
	}
	return serveLines(srv, meta.Vertices, os.Stdin, os.Stdout)
}

// delayIndex adds a fixed service time to every query — a deliberately
// throttled backend for overload and admission-control testing. It does
// not implement index.Batcher, so every request pays the delay.
type delayIndex struct {
	index.Index
	delay time.Duration
}

func (d *delayIndex) Distance(u, v graph.NodeID) graph.Weight {
	time.Sleep(d.delay)
	return d.Index.Distance(u, v)
}

// lineClient identifies the line-protocol connection to the admission
// controller. Each serveLines call is one connection (stdin today), so a
// fixed id per call is the per-connection identity.
var lineConnSeq int

// serveLines answers "u v" query lines from in until EOF or "quit".
// Each response is flushed immediately so interactive clients that wait
// for an answer before the next query don't deadlock on the buffer.
// Overloaded requests answer "BUSY" — the line client's analogue of
// HTTP 429 — and out-of-range or malformed queries answer an error line
// instead of panicking the process.
func serveLines(srv *server.Server, n int, in io.Reader, out io.Writer) error {
	lineConnSeq++
	client := fmt.Sprintf("conn-%d", lineConnSeq)
	sc := bufio.NewScanner(in)
	w := bufio.NewWriter(out)
	defer w.Flush()
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if line == "quit" {
			break
		}
		// Require exactly two integer fields — Sscanf would silently
		// ignore trailing garbage ("1 2 3", "1 2.5") and answer a
		// different query than the client sent.
		var u, v int
		fields := strings.Fields(line)
		bad := len(fields) != 2
		if !bad {
			var errU, errV error
			u, errU = strconv.Atoi(fields[0])
			v, errV = strconv.Atoi(fields[1])
			bad = errU != nil || errV != nil
		}
		switch {
		case bad:
			fmt.Fprintf(w, "error: bad query %q (want: u v)\n", line)
		case u < 0 || u >= n || v < 0 || v >= n:
			fmt.Fprintf(w, "error: vertex out of range [0,%d)\n", n)
		default:
			d, err := srv.TryQuery(client, graph.NodeID(u), graph.NodeID(v))
			switch {
			case errors.Is(err, server.ErrOverloaded):
				fmt.Fprintf(w, "BUSY\n")
			case err != nil:
				fmt.Fprintf(w, "error: %v\n", err)
			case d >= graph.Infinity:
				fmt.Fprintf(w, "%d %d inf\n", u, v)
			default:
				fmt.Fprintf(w, "%d %d %d\n", u, v, d)
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "served %d queries in %d groups across %d shards (%d rejected, %d shed)\n",
		st.Served, st.Batches, st.Shards, st.Rejected, st.Shed)
	return nil
}

// httpTimeouts bound how long a client may hold a connection in each
// phase; without them a single stalled client (slowloris) pins a handler
// goroutine forever.
type httpTimeouts struct {
	readHeader time.Duration
	read       time.Duration
	write      time.Duration
	idle       time.Duration
}

var defaultHTTPTimeouts = httpTimeouts{
	readHeader: 5 * time.Second,
	read:       10 * time.Second,
	write:      10 * time.Second,
	idle:       60 * time.Second,
}

// clientID extracts the admission-control identity of an HTTP request:
// the remote host without the ephemeral port, so reconnecting does not
// reset a flooder's buckets.
func clientID(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// newMux builds the hubserve HTTP surface over srv (n = vertex count).
func newMux(srv *server.Server, n int) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/distance", func(w http.ResponseWriter, r *http.Request) {
		u, errU := strconv.Atoi(r.URL.Query().Get("u"))
		v, errV := strconv.Atoi(r.URL.Query().Get("v"))
		if errU != nil || errV != nil || u < 0 || u >= n || v < 0 || v >= n {
			http.Error(w, fmt.Sprintf("want /distance?u=U&v=V with vertices in [0,%d)", n),
				http.StatusBadRequest)
			return
		}
		d, err := srv.TryQuery(clientID(r), graph.NodeID(u), graph.NodeID(v))
		switch {
		case errors.Is(err, server.ErrOverloaded):
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded, retry later", http.StatusTooManyRequests)
			return
		case err != nil: // ErrClosed: the process is on its way out
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if d >= graph.Infinity {
			fmt.Fprintf(w, `{"u":%d,"v":%d,"distance":null}`+"\n", u, v)
			return
		}
		fmt.Fprintf(w, `{"u":%d,"v":%d,"distance":%d}`+"\n", u, v, d)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		st := srv.Stats()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"shards":%d,"served":%d,"batches":%d,"rejected":%d,"shed":%d,"hot_clients":%d}`+"\n",
			st.Shards, st.Served, st.Batches, st.Rejected, st.Shed, st.PerClientHot)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// newHTTPServer assembles the hubserve http.Server: the mux plus the
// per-phase timeouts.
func newHTTPServer(srv *server.Server, n int, addr string, to httpTimeouts) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           newMux(srv, n),
		ReadHeaderTimeout: to.readHeader,
		ReadTimeout:       to.read,
		WriteTimeout:      to.write,
		IdleTimeout:       to.idle,
	}
}

// serveHTTP exposes /distance, /stats and /healthz.
func serveHTTP(srv *server.Server, n int, addr string) error {
	fmt.Fprintf(os.Stderr, "serving HTTP on %s\n", addr)
	hs := newHTTPServer(srv, n, addr, defaultHTTPTimeouts)
	err := hs.ListenAndServe()
	// ListenAndServe returns on a fatal listener error while handler
	// goroutines may still be inside srv.TryQuery; drain them before the
	// deferred srv.Close so its no-query-in-flight contract holds. The
	// drain is bounded — a stalled client must not wedge the exit.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if serr := hs.Shutdown(ctx); serr != nil {
		// A handler survived the drain window, so the normal exit path
		// would run srv.Close under live queries; report and exit hard
		// instead (deferred cleanup is skipped deliberately).
		log.Printf("hubserve: %v (drain failed: %v)", err, serr)
		os.Exit(1)
	}
	return err
}
