// Command hubserve loads a hub-labeling index container (written by
// hubgen -out) and serves exact distance queries from it — the paper's
// stored-label query structure as a running service. Queries go through
// the sharded in-process query service (internal/server): worker
// goroutines coalesce adjacent requests into interleaved-merge batches,
// and the served index sits behind an atomic snapshot.
//
// Two front ends:
//
//   - line protocol (default): one "u v" pair per stdin line, answered as
//     "u v dist" ("inf" when unreachable); "quit" stops.
//   - HTTP (-http addr): GET /distance?u=U&v=V, plus /stats and /healthz.
//
// With -graph the input graph is loaded too and every served distance is
// spot-checkable: -selfcheck n verifies n random queries against
// bidirectional search before serving.
//
// Usage:
//
//	hubgen -gen gnm -n 10000 -algo pll -out labels.hli -graphout g.gr
//	echo "0 17" | hubserve -index labels.hli
//	hubserve -index labels.hli -graph g.gr -selfcheck 200
//	hubserve -index labels.hli -http :8080
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"hublab/internal/graph"
	"hublab/internal/index"
	"hublab/internal/server"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	indexPath := flag.String("index", "", "index container to serve (required)")
	graphPath := flag.String("graph", "", "optional graph file for self-checking")
	httpAddr := flag.String("http", "", "serve HTTP on this address instead of the line protocol")
	workers := flag.Int("workers", 0, "shard/worker count (0 = number of CPUs)")
	selfcheck := flag.Int("selfcheck", 0, "verify this many random queries against graph search before serving (needs -graph)")
	flag.Parse()
	if *indexPath == "" {
		return fmt.Errorf("hubserve: -index is required")
	}

	start := time.Now()
	idx, err := index.Load(*indexPath)
	if err != nil {
		return err
	}
	meta := idx.Meta()
	fmt.Fprintf(os.Stderr, "loaded %s: %s n=%d space=%d bytes in %v\n",
		*indexPath, meta.Kind, meta.Vertices, idx.SpaceBytes(), time.Since(start).Round(time.Microsecond))

	var g *graph.Graph
	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			return err
		}
		g, err = graph.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		if g.NumNodes() != meta.Vertices {
			return fmt.Errorf("hubserve: graph has %d vertices, index has %d", g.NumNodes(), meta.Vertices)
		}
	}

	srv := server.New(idx, server.Options{Shards: *workers})
	defer srv.Close()

	if *selfcheck > 0 {
		if g == nil {
			return fmt.Errorf("hubserve: -selfcheck needs -graph")
		}
		if err := index.VerifySampled(idx, g, *selfcheck, 1); err != nil {
			return fmt.Errorf("hubserve: selfcheck: %w", err)
		}
		fmt.Fprintf(os.Stderr, "selfcheck: %d random queries match graph search\n", *selfcheck)
	}

	if *httpAddr != "" {
		return serveHTTP(srv, meta.Vertices, *httpAddr)
	}
	return serveLines(srv, meta.Vertices)
}

// serveLines answers "u v" query lines from stdin until EOF or "quit".
// Each response is flushed immediately so interactive clients that wait
// for an answer before the next query don't deadlock on the buffer.
func serveLines(srv *server.Server, n int) error {
	sc := bufio.NewScanner(os.Stdin)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if line == "quit" {
			break
		}
		// Require exactly two integer fields — Sscanf would silently
		// ignore trailing garbage ("1 2 3", "1 2.5") and answer a
		// different query than the client sent.
		var u, v int
		fields := strings.Fields(line)
		bad := len(fields) != 2
		if !bad {
			var errU, errV error
			u, errU = strconv.Atoi(fields[0])
			v, errV = strconv.Atoi(fields[1])
			bad = errU != nil || errV != nil
		}
		switch {
		case bad:
			fmt.Fprintf(w, "error: bad query %q (want: u v)\n", line)
		case u < 0 || u >= n || v < 0 || v >= n:
			fmt.Fprintf(w, "error: vertex out of range [0,%d)\n", n)
		default:
			d := srv.Query(graph.NodeID(u), graph.NodeID(v))
			if d >= graph.Infinity {
				fmt.Fprintf(w, "%d %d inf\n", u, v)
			} else {
				fmt.Fprintf(w, "%d %d %d\n", u, v, d)
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "served %d queries in %d groups across %d shards\n",
		st.Served, st.Batches, st.Shards)
	return nil
}

// serveHTTP exposes /distance, /stats and /healthz.
func serveHTTP(srv *server.Server, n int, addr string) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/distance", func(w http.ResponseWriter, r *http.Request) {
		u, errU := strconv.Atoi(r.URL.Query().Get("u"))
		v, errV := strconv.Atoi(r.URL.Query().Get("v"))
		if errU != nil || errV != nil || u < 0 || u >= n || v < 0 || v >= n {
			http.Error(w, fmt.Sprintf("want /distance?u=U&v=V with vertices in [0,%d)", n),
				http.StatusBadRequest)
			return
		}
		d := srv.Query(graph.NodeID(u), graph.NodeID(v))
		w.Header().Set("Content-Type", "application/json")
		if d >= graph.Infinity {
			fmt.Fprintf(w, `{"u":%d,"v":%d,"distance":null}`+"\n", u, v)
			return
		}
		fmt.Fprintf(w, `{"u":%d,"v":%d,"distance":%d}`+"\n", u, v, d)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		st := srv.Stats()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"shards":%d,"served":%d,"batches":%d}`+"\n", st.Shards, st.Served, st.Batches)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	fmt.Fprintf(os.Stderr, "serving HTTP on %s\n", addr)
	hs := &http.Server{Addr: addr, Handler: mux}
	err := hs.ListenAndServe()
	// ListenAndServe returns on a fatal listener error while handler
	// goroutines may still be inside srv.Query; drain them before the
	// deferred srv.Close so its no-query-in-flight contract holds. The
	// drain is bounded — a stalled client must not wedge the exit.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if serr := hs.Shutdown(ctx); serr != nil {
		// A handler survived the drain window, so the normal exit path
		// would run srv.Close under live queries; report and exit hard
		// instead (deferred cleanup is skipped deliberately).
		log.Printf("hubserve: %v (drain failed: %v)", err, serr)
		os.Exit(1)
	}
	return err
}
