// Command hubserve loads a hub-labeling index container (written by
// hubgen -out) and serves exact distance queries from it — the paper's
// stored-label query structure as a running service. Queries go through
// the sharded in-process query service (internal/server): worker
// goroutines coalesce adjacent requests into interleaved-merge batches,
// and the served index sits behind an atomic snapshot.
//
// Overload degrades gracefully instead of blocking or crashing: both
// front ends submit through the server's non-blocking TryQuery door, and
// (unless -admission=false) a constant-memory fair admission controller
// (internal/flowctl) sheds load per client, so one flooding client
// cannot starve the rest.
//
// Two front ends:
//
//   - line protocol (default): one "u v" pair per stdin line, answered as
//     "u v dist" ("inf" when unreachable); "PATH u v" answers "path u v
//     v0 v1 ... vk" (one shortest path, "path u v inf" when unreachable);
//     "ECC v" answers "ecc v <eccentricity> <farthest-vertex>"; "BUSY"
//     when the request was shed under overload; "quit" stops.
//   - HTTP (-http addr): GET /distance?u=U&v=V, /path?u=U&v=V and /ecc?v=V
//     (429 + Retry-After under overload, client identity = remote
//     address; 501 when the served index lacks the capability, e.g. a
//     version-1 container without the parent column), plus /stats and
//     /healthz. The server carries read/write/idle timeouts so a stalled
//     client cannot hold a handler goroutine forever.
//
// With -graph the input graph is loaded too and every served distance is
// spot-checkable: -selfcheck n verifies n random queries against
// bidirectional search before serving.
//
// Usage:
//
//	hubgen -gen gnm -n 10000 -algo pll -out labels.hli -graphout g.gr
//	echo "0 17" | hubserve -index labels.hli
//	hubserve -index labels.hli -graph g.gr -selfcheck 200
//	hubserve -index labels.hli -http :8080
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"hublab/internal/flowctl"
	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/index"
	"hublab/internal/server"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	indexPath := flag.String("index", "", "index container to serve (required)")
	graphPath := flag.String("graph", "", "optional graph file for self-checking")
	httpAddr := flag.String("http", "", "serve HTTP on this address instead of the line protocol")
	workers := flag.Int("workers", 0, "shard/worker count (0 = number of CPUs)")
	queue := flag.Int("queue", 0, "per-shard queue depth (0 = default)")
	admission := flag.Bool("admission", true, "fair per-client load shedding under overload")
	simLatency := flag.Duration("simlatency", 0, "artificial per-query service time, for load and overload testing")
	selfcheck := flag.Int("selfcheck", 0, "verify this many random queries against graph search before serving (needs -graph)")
	flag.Parse()
	if *indexPath == "" {
		return fmt.Errorf("hubserve: -index is required")
	}

	start := time.Now()
	idx, err := index.Load(*indexPath)
	if err != nil {
		return err
	}
	meta := idx.Meta()
	fmt.Fprintf(os.Stderr, "loaded %s: %s n=%d space=%d bytes in %v\n",
		*indexPath, meta.Kind, meta.Vertices, idx.SpaceBytes(), time.Since(start).Round(time.Microsecond))

	var g *graph.Graph
	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			return err
		}
		g, err = graph.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		if g.NumNodes() != meta.Vertices {
			return fmt.Errorf("hubserve: graph has %d vertices, index has %d", g.NumNodes(), meta.Vertices)
		}
	}

	served := index.Index(idx)
	if *simLatency > 0 {
		served = &delayIndex{Index: idx, delay: *simLatency}
	}
	opts := server.Options{Shards: *workers, QueueDepth: *queue}
	if *admission {
		opts.Admission = &flowctl.Options{}
	}
	srv := server.New(served, opts)
	defer srv.Close()

	if *selfcheck > 0 {
		if g == nil {
			return fmt.Errorf("hubserve: -selfcheck needs -graph")
		}
		if err := index.VerifySampled(idx, g, *selfcheck, 1); err != nil {
			return fmt.Errorf("hubserve: selfcheck: %w", err)
		}
		fmt.Fprintf(os.Stderr, "selfcheck: %d random queries match graph search\n", *selfcheck)
	}

	if *httpAddr != "" {
		return serveHTTP(srv, meta.Vertices, *httpAddr)
	}
	return serveLines(srv, meta.Vertices, os.Stdin, os.Stdout)
}

// delayIndex adds a fixed service time to every query — a deliberately
// throttled backend for overload and admission-control testing. It does
// not implement index.Batcher, so every request pays the delay.
type delayIndex struct {
	index.Index
	delay time.Duration
}

func (d *delayIndex) Distance(u, v graph.NodeID) graph.Weight {
	time.Sleep(d.delay)
	return d.Index.Distance(u, v)
}

// lineClient identifies the line-protocol connection to the admission
// controller. Each serveLines call is one connection (stdin today), so a
// fixed id per call is the per-connection identity.
var lineConnSeq int

// pathBufs pools path destination buffers across HTTP handler
// goroutines, so steady-state /path traffic reuses storage instead of
// allocating per request.
var pathBufs = sync.Pool{New: func() any { return new([]graph.NodeID) }}

// unsupported reports whether a query failed because the served index
// lacks the capability (no PathReporter/EccentricityReporter, or a
// hub-label index loaded from a version-1 container without parents).
func unsupported(err error) bool {
	return errors.Is(err, server.ErrUnsupported) || errors.Is(err, hub.ErrNoParents)
}

// serveLines answers query lines from in until EOF or "quit": "u v" for a
// distance, "PATH u v" for one shortest path, "ECC v" for eccentricity
// plus a farthest vertex. Each response is flushed immediately so
// interactive clients that wait for an answer before the next query don't
// deadlock on the buffer. Overloaded requests answer "BUSY" — the line
// client's analogue of HTTP 429 — and out-of-range or malformed queries
// answer an error line instead of panicking the process.
func serveLines(srv *server.Server, n int, in io.Reader, out io.Writer) error {
	lineConnSeq++
	client := fmt.Sprintf("conn-%d", lineConnSeq)
	sc := bufio.NewScanner(in)
	w := bufio.NewWriter(out)
	defer w.Flush()
	var pathBuf []graph.NodeID
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if line == "quit" {
			break
		}
		serveLine(srv, client, n, line, &pathBuf, w)
		if err := w.Flush(); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "served %d queries in %d groups across %d shards (%d rejected, %d shed)\n",
		st.Served, st.Batches, st.Shards, st.Rejected, st.Shed)
	return nil
}

// serveLine parses and answers one protocol line. Field counts are
// strict — Sscanf would silently ignore trailing garbage ("1 2 3",
// "1 2.5") and answer a different query than the client sent.
func serveLine(srv *server.Server, client string, n int, line string, pathBuf *[]graph.NodeID, w io.Writer) {
	fields := strings.Fields(line)
	atoi := func(s string) (int, bool) {
		x, err := strconv.Atoi(s)
		return x, err == nil
	}
	inRange := func(xs ...int) bool {
		for _, x := range xs {
			if x < 0 || x >= n {
				return false
			}
		}
		return true
	}
	switch {
	case len(fields) > 0 && fields[0] == "PATH":
		var u, v int
		okU, okV := false, false
		if len(fields) == 3 {
			u, okU = atoi(fields[1])
			v, okV = atoi(fields[2])
		}
		if !okU || !okV {
			fmt.Fprintf(w, "error: bad query %q (want: PATH u v)\n", line)
			return
		}
		if !inRange(u, v) {
			fmt.Fprintf(w, "error: vertex out of range [0,%d)\n", n)
			return
		}
		path, err := srv.TryPath(client, graph.NodeID(u), graph.NodeID(v), (*pathBuf)[:0])
		*pathBuf = path
		switch {
		case errors.Is(err, server.ErrOverloaded):
			fmt.Fprintf(w, "BUSY\n")
		case unsupported(err):
			fmt.Fprintf(w, "error: path queries unsupported by this index\n")
		case err != nil:
			fmt.Fprintf(w, "error: %v\n", err)
		case len(path) == 0:
			fmt.Fprintf(w, "path %d %d inf\n", u, v)
		default:
			fmt.Fprintf(w, "path %d %d", u, v)
			for _, x := range path {
				fmt.Fprintf(w, " %d", x)
			}
			fmt.Fprintf(w, "\n")
		}
	case len(fields) > 0 && fields[0] == "ECC":
		var v int
		okV := false
		if len(fields) == 2 {
			v, okV = atoi(fields[1])
		}
		if !okV {
			fmt.Fprintf(w, "error: bad query %q (want: ECC v)\n", line)
			return
		}
		if !inRange(v) {
			fmt.Fprintf(w, "error: vertex out of range [0,%d)\n", n)
			return
		}
		far, ecc, err := srv.TryFarthest(client, graph.NodeID(v))
		switch {
		case errors.Is(err, server.ErrOverloaded):
			fmt.Fprintf(w, "BUSY\n")
		case unsupported(err):
			fmt.Fprintf(w, "error: eccentricity queries unsupported by this index\n")
		case err != nil:
			fmt.Fprintf(w, "error: %v\n", err)
		default:
			fmt.Fprintf(w, "ecc %d %d %d\n", v, ecc, far)
		}
	case len(fields) == 2:
		u, okU := atoi(fields[0])
		v, okV := atoi(fields[1])
		if !okU || !okV {
			fmt.Fprintf(w, "error: bad query %q (want: u v)\n", line)
			return
		}
		if !inRange(u, v) {
			fmt.Fprintf(w, "error: vertex out of range [0,%d)\n", n)
			return
		}
		d, err := srv.TryQuery(client, graph.NodeID(u), graph.NodeID(v))
		switch {
		case errors.Is(err, server.ErrOverloaded):
			fmt.Fprintf(w, "BUSY\n")
		case err != nil:
			fmt.Fprintf(w, "error: %v\n", err)
		case d >= graph.Infinity:
			fmt.Fprintf(w, "%d %d inf\n", u, v)
		default:
			fmt.Fprintf(w, "%d %d %d\n", u, v, d)
		}
	default:
		fmt.Fprintf(w, "error: bad query %q (want: u v | PATH u v | ECC v)\n", line)
	}
}

// httpTimeouts bound how long a client may hold a connection in each
// phase; without them a single stalled client (slowloris) pins a handler
// goroutine forever.
type httpTimeouts struct {
	readHeader time.Duration
	read       time.Duration
	write      time.Duration
	idle       time.Duration
}

var defaultHTTPTimeouts = httpTimeouts{
	readHeader: 5 * time.Second,
	read:       10 * time.Second,
	write:      10 * time.Second,
	idle:       60 * time.Second,
}

// clientID extracts the admission-control identity of an HTTP request:
// the remote host without the ephemeral port, so reconnecting does not
// reset a flooder's buckets.
func clientID(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// newMux builds the hubserve HTTP surface over srv (n = vertex count).
func newMux(srv *server.Server, n int) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/distance", func(w http.ResponseWriter, r *http.Request) {
		u, errU := strconv.Atoi(r.URL.Query().Get("u"))
		v, errV := strconv.Atoi(r.URL.Query().Get("v"))
		if errU != nil || errV != nil || u < 0 || u >= n || v < 0 || v >= n {
			http.Error(w, fmt.Sprintf("want /distance?u=U&v=V with vertices in [0,%d)", n),
				http.StatusBadRequest)
			return
		}
		d, err := srv.TryQuery(clientID(r), graph.NodeID(u), graph.NodeID(v))
		switch {
		case errors.Is(err, server.ErrOverloaded):
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded, retry later", http.StatusTooManyRequests)
			return
		case err != nil: // ErrClosed: the process is on its way out
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if d >= graph.Infinity {
			fmt.Fprintf(w, `{"u":%d,"v":%d,"distance":null}`+"\n", u, v)
			return
		}
		fmt.Fprintf(w, `{"u":%d,"v":%d,"distance":%d}`+"\n", u, v, d)
	})
	mux.HandleFunc("/path", func(w http.ResponseWriter, r *http.Request) {
		u, errU := strconv.Atoi(r.URL.Query().Get("u"))
		v, errV := strconv.Atoi(r.URL.Query().Get("v"))
		if errU != nil || errV != nil || u < 0 || u >= n || v < 0 || v >= n {
			http.Error(w, fmt.Sprintf("want /path?u=U&v=V with vertices in [0,%d)", n),
				http.StatusBadRequest)
			return
		}
		bp := pathBufs.Get().(*[]graph.NodeID)
		path, err := srv.TryPath(clientID(r), graph.NodeID(u), graph.NodeID(v), (*bp)[:0])
		*bp = path
		defer pathBufs.Put(bp)
		switch {
		case errors.Is(err, server.ErrOverloaded):
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded, retry later", http.StatusTooManyRequests)
			return
		case unsupported(err):
			http.Error(w, "path reporting unavailable (index has no parent column)",
				http.StatusNotImplemented)
			return
		case errors.Is(err, server.ErrClosed):
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
			return
		case err != nil:
			// A persistent query error (e.g. an inconsistent parent column
			// that fails to unpack) — not a shutdown: report it as such so
			// clients and load balancers do not retry forever.
			http.Error(w, "path query failed: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if len(path) == 0 {
			fmt.Fprintf(w, `{"u":%d,"v":%d,"path":null}`+"\n", u, v)
			return
		}
		fmt.Fprintf(w, `{"u":%d,"v":%d,"hops":%d,"path":[`, u, v, len(path)-1)
		for i, x := range path {
			if i > 0 {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, "%d", x)
		}
		io.WriteString(w, "]}\n")
	})
	mux.HandleFunc("/ecc", func(w http.ResponseWriter, r *http.Request) {
		v, errV := strconv.Atoi(r.URL.Query().Get("v"))
		if errV != nil || v < 0 || v >= n {
			http.Error(w, fmt.Sprintf("want /ecc?v=V with a vertex in [0,%d)", n),
				http.StatusBadRequest)
			return
		}
		far, ecc, err := srv.TryFarthest(clientID(r), graph.NodeID(v))
		switch {
		case errors.Is(err, server.ErrOverloaded):
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded, retry later", http.StatusTooManyRequests)
			return
		case unsupported(err):
			http.Error(w, "eccentricity reporting unavailable", http.StatusNotImplemented)
			return
		case errors.Is(err, server.ErrClosed):
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
			return
		case err != nil:
			http.Error(w, "eccentricity query failed: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"v":%d,"eccentricity":%d,"farthest":%d}`+"\n", v, ecc, far)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		st := srv.Stats()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"shards":%d,"served":%d,"batches":%d,"rejected":%d,"shed":%d,"hot_clients":%d}`+"\n",
			st.Shards, st.Served, st.Batches, st.Rejected, st.Shed, st.PerClientHot)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// newHTTPServer assembles the hubserve http.Server: the mux plus the
// per-phase timeouts.
func newHTTPServer(srv *server.Server, n int, addr string, to httpTimeouts) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           newMux(srv, n),
		ReadHeaderTimeout: to.readHeader,
		ReadTimeout:       to.read,
		WriteTimeout:      to.write,
		IdleTimeout:       to.idle,
	}
}

// serveHTTP exposes /distance, /stats and /healthz.
func serveHTTP(srv *server.Server, n int, addr string) error {
	fmt.Fprintf(os.Stderr, "serving HTTP on %s\n", addr)
	hs := newHTTPServer(srv, n, addr, defaultHTTPTimeouts)
	err := hs.ListenAndServe()
	// ListenAndServe returns on a fatal listener error while handler
	// goroutines may still be inside srv.TryQuery; drain them before the
	// deferred srv.Close so its no-query-in-flight contract holds. The
	// drain is bounded — a stalled client must not wedge the exit.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if serr := hs.Shutdown(ctx); serr != nil {
		// A handler survived the drain window, so the normal exit path
		// would run srv.Close under live queries; report and exit hard
		// instead (deferred cleanup is skipped deliberately).
		log.Printf("hubserve: %v (drain failed: %v)", err, serr)
		os.Exit(1)
	}
	return err
}
