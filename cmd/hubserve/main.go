// Command hubserve loads a hub-labeling index container (written by
// hubgen -out) and serves exact distance queries from it — the paper's
// stored-label query structure as a running service. Queries go through
// the sharded in-process query service (internal/server): worker
// goroutines coalesce adjacent requests into interleaved-merge batches,
// and the served index sits behind an atomic snapshot.
//
// With -mmap the container is served zero-copy: the index's CSR columns
// are typed views of the memory-mapped file (aligned/v3 containers;
// older formats fall back to a decoded load), so startup is O(n) plus
// one checksum pass, no second copy of the index exists in anonymous
// memory, and multiple hubserve processes serving the same file share
// its physical pages. The served container can be replaced without
// restarting: SIGHUP — or the /reload HTTP endpoint — re-opens the
// -index path and hot-swaps the new index under live traffic with zero
// dropped queries (in-flight queries finish on the old mapping, which is
// unmapped when the last of them drains). Replace the file by atomic
// rename (mv new.hli labels.hli), never by in-place overwrite: a rename
// leaves the mapped inode intact, an overwrite rewrites live pages under
// running queries.
//
// Overload degrades gracefully instead of blocking or crashing: both
// front ends submit through the server's non-blocking TryQuery door, and
// (unless -admission=false) a constant-memory fair admission controller
// (internal/flowctl) sheds load per client, so one flooding client
// cannot starve the rest.
//
// Faults degrade gracefully too: a backend panic is contained to the
// request group that hit it (the worker recovers and keeps serving),
// -querytimeout bounds every query ("TIMEOUT" / HTTP 504 at the
// deadline), and /healthz turns 503 with a reason when the recent panic
// or timeout rate crosses the fault-health thresholds — overload alone
// never does. SIGTERM/SIGINT drain in-flight queries (bounded) before
// exiting; a corrupt container is quarantined (renamed aside) at
// startup and on reload instead of being retried forever.
//
// Three front ends:
//
//   - line protocol (default): one "u v" pair per stdin line, answered as
//     "u v dist" ("inf" when unreachable); "PATH u v" answers "path u v
//     v0 v1 ... vk" (one shortest path, "path u v inf" when unreachable);
//     "ECC v" answers "ecc v <eccentricity> <farthest-vertex>"; "BUSY"
//     when the request was shed under overload; "quit" stops.
//   - HTTP (-http addr): GET /distance?u=U&v=V, /path?u=U&v=V and /ecc?v=V
//     (429 + Retry-After under overload, client identity = remote
//     address; 501 when the served index lacks the capability, e.g. a
//     version-1 container without the parent column), plus /stats,
//     /healthz and POST /reload (hot-swap to the current contents of the
//     -index path; on failure the previous index keeps serving). The
//     server carries read/write/idle timeouts so a stalled client cannot
//     hold a handler goroutine forever.
//   - binary batch protocol (-binary addr): the internal/wire framed
//     protocol — many queries per frame, varint-packed, answered through
//     the same shard queues, admission controller, deadlines and hot
//     cache as the other doors. This is the door cmd/hubq and the
//     internal/hubclient pooled client speak, and the one replicas use
//     for fleet traffic. It can run alongside -http; with neither -http
//     nor stdin traffic wanted, -binary alone parks the process until
//     SIGTERM.
//
// Fleets: -peers gossips the local admission controller's bucket state
// to the binary doors of the listed replicas every -gossipevery (see
// DESIGN.md "Shared admission"). All replicas must run the same
// admission geometry and seed; a flooding client shed on one replica
// is then throttled fleet-wide, so retrying against a different
// replica buys it nothing.
//
// With -graph the input graph is loaded too and every served distance is
// spot-checkable: -selfcheck n verifies n random queries against
// bidirectional search before serving, and again on every reload before
// the swap — a bad replacement container is rejected, not served.
//
// Usage:
//
//	hubgen -gen gnm -n 10000 -algo pll -aligned -out labels.hli -graphout g.gr
//	echo "0 17" | hubserve -index labels.hli
//	hubserve -index labels.hli -graph g.gr -selfcheck 200
//	hubserve -index labels.hli -http :8080 -mmap
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"hublab/internal/faultinject"
	"hublab/internal/flowctl"
	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/index"
	"hublab/internal/netserve"
	"hublab/internal/server"
)

// osExit is swapped out by tests that pin the drain-timeout exit path.
var osExit = os.Exit

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	indexPath := flag.String("index", "", "index container to serve (required)")
	graphPath := flag.String("graph", "", "optional graph file for self-checking")
	httpAddr := flag.String("http", "", "serve HTTP on this address instead of the line protocol")
	workers := flag.Int("workers", 0, "shard/worker count (0 = number of CPUs)")
	queue := flag.Int("queue", 0, "per-shard queue depth (0 = default)")
	admission := flag.Bool("admission", true, "fair per-client load shedding under overload")
	useMmap := flag.Bool("mmap", false, "serve the container zero-copy via mmap (aligned/v3 containers; older formats fall back to a decoded load)")
	simLatency := flag.Duration("simlatency", 0, "artificial per-query service time, for load and overload testing")
	selfcheck := flag.Int("selfcheck", 0, "verify this many random queries against graph search before serving and on reload (needs -graph)")
	queryTimeout := flag.Duration("querytimeout", 0, "per-query deadline (0 = none); timed-out queries answer TIMEOUT / HTTP 504")
	hotCache := flag.Int("hotcache", 0, "per-shard hot result cache entries for repeated (u,v) pairs (0 = disabled); invalidated automatically on reload")
	binaryAddr := flag.String("binary", "", "serve the length-prefixed binary batch protocol on this address (alone, or alongside -http)")
	peers := flag.String("peers", "", "comma-separated binary-door addresses of replica peers to gossip admission state to (needs admission)")
	gossipEvery := flag.Duration("gossipevery", 100*time.Millisecond, "interval between admission-gossip rounds to -peers")
	flag.Parse()
	if *indexPath == "" {
		return fmt.Errorf("hubserve: -index is required")
	}

	// Fault injection arms only from the environment, never from a flag:
	// the chaos harness and CI set HUBLAB_FAULTS, and the loud log line
	// makes an accidentally inherited spec impossible to miss.
	if spec, on, err := faultinject.EnableFromEnv(); err != nil {
		return fmt.Errorf("hubserve: %w", err)
	} else if on {
		log.Printf("hubserve: FAULT INJECTION ACTIVE (HUBLAB_FAULTS=%q) — this process will misbehave on purpose", spec)
	}

	// A crashed hubgen can strand ".hli-*" temp siblings next to the
	// container; they are never valid, so sweep them before serving.
	if removed, err := index.CleanPartials(filepath.Dir(*indexPath)); err != nil {
		log.Printf("hubserve: cleaning partial containers: %v", err)
	} else if len(removed) > 0 {
		log.Printf("hubserve: removed %d partial container file(s): %v", len(removed), removed)
	}

	load := func() (*index.HubLabels, error) {
		if *useMmap {
			return index.LoadMmap(*indexPath)
		}
		return index.Load(*indexPath)
	}
	start := time.Now()
	idx, err := load()
	if err != nil {
		// A torn or bit-rotted container will never load on retry; move it
		// aside so supervisors restarting the process fail fast on a clear
		// "no container" instead of spinning on the same corrupt bytes.
		if index.IsCorrupt(err) {
			if q, qerr := index.Quarantine(*indexPath); qerr == nil {
				return fmt.Errorf("hubserve: container is corrupt, quarantined to %s: %w", q, err)
			}
		}
		return err
	}
	meta := idx.Meta()
	fmt.Fprintf(os.Stderr, "loaded %s: %s n=%d space=%d bytes in %v (mmap view: %v)\n",
		*indexPath, meta.Kind, meta.Vertices, idx.SpaceBytes(),
		time.Since(start).Round(time.Microsecond), !idx.Owned())

	var g *graph.Graph
	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			return err
		}
		g, err = graph.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		if g.NumNodes() != meta.Vertices {
			return fmt.Errorf("hubserve: graph has %d vertices, index has %d", g.NumNodes(), meta.Vertices)
		}
	}

	served := index.Index(idx)
	if *simLatency > 0 {
		served = &delayIndex{Index: idx, delay: *simLatency}
	}
	// The server owns every served index (the initial one here, reloaded
	// ones via SwapRetire): a retired mmap view is unmapped after its
	// last in-flight query drains, and Close releases the final one.
	opts := server.Options{Shards: *workers, QueueDepth: *queue, OwnIndex: true, QueryTimeout: *queryTimeout, HotCache: *hotCache}
	if *admission {
		opts.Admission = &flowctl.Options{}
	}
	srv := server.New(served, opts)
	defer srv.Close()

	if *selfcheck > 0 {
		if g == nil {
			return fmt.Errorf("hubserve: -selfcheck needs -graph")
		}
		if err := index.VerifySampled(idx, g, *selfcheck, 1); err != nil {
			return fmt.Errorf("hubserve: selfcheck: %w", err)
		}
		fmt.Fprintf(os.Stderr, "selfcheck: %d random queries match graph search\n", *selfcheck)
	}

	rl := &reloader{load: load, srv: srv, g: g, path: *indexPath, selfcheck: *selfcheck, sim: *simLatency, cooldown: reloadCooldown}
	// One signal goroutine demuxes the whole repertoire: SIGHUP hot-swaps
	// the container (and keeps listening), SIGTERM/SIGINT start the
	// graceful drain exactly once and then reset to the default
	// disposition, so a second Ctrl-C force-kills a wedged drain.
	sig := make(chan os.Signal, 4)
	signal.Notify(sig, syscall.SIGHUP, syscall.SIGTERM, syscall.SIGINT)
	stop := make(chan struct{})
	go func() {
		for s := range sig {
			if s == syscall.SIGHUP {
				if m, err := rl.reload(); err != nil {
					log.Printf("hubserve: SIGHUP reload failed, previous index keeps serving: %v", err)
				} else {
					log.Printf("hubserve: reloaded %s: n=%d", *indexPath, m.Vertices)
				}
				continue
			}
			log.Printf("hubserve: %v: draining in-flight queries (again to force quit)", s)
			signal.Reset(syscall.SIGTERM, syscall.SIGINT)
			close(stop)
			return
		}
	}()

	var door *netserve.Door
	if *binaryAddr != "" {
		ln, err := net.Listen("tcp", *binaryAddr)
		if err != nil {
			return err
		}
		door = netserve.New(srv, netserve.Options{})
		defer door.Close()
		go func() {
			if serr := door.Serve(ln); serr != nil && !errors.Is(serr, net.ErrClosed) {
				log.Printf("hubserve: binary door: %v", serr)
			}
		}()
		fmt.Fprintf(os.Stderr, "serving binary protocol on %s\n", ln.Addr())
	}
	if *peers != "" {
		if !*admission {
			return fmt.Errorf("hubserve: -peers shares admission state and needs -admission=true")
		}
		gsp := netserve.NewGossiper(srv.AdmissionController(), strings.Split(*peers, ","), *gossipEvery)
		go gsp.Run(stop)
		fmt.Fprintf(os.Stderr, "gossiping admission state to %s every %v\n", *peers, *gossipEvery)
	}

	if *httpAddr != "" {
		return serveHTTP(srv, rl, *httpAddr, stop)
	}
	if door != nil {
		return serveBinary(srv, door, stop)
	}
	return serveLinesMain(srv, os.Stdin, os.Stdout, stop)
}

// serveBinary parks the main goroutine until a termination signal when
// the binary door is the only front end, then drains it: Close stops
// the listener, closes every connection and waits for the per-conn
// goroutines, so the deferred server Close runs with no query in
// flight. In-flight frames finish; clients see the connection close
// and fail over to a replica.
func serveBinary(srv *server.Server, door *netserve.Door, stop <-chan struct{}) error {
	<-stop
	door.Close()
	ds := door.Stats()
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "drained: %d frames / %d queries over binary (%d bad frames, %d gossip merges); served %d (%d rejected, %d shed, %d faulted, %d timeouts)\n",
		ds.Frames, ds.Queries, ds.BadFrames, ds.GossipMerged,
		st.Served, st.Rejected, st.Shed, st.Faulted, st.Timeouts)
	return nil
}

// reloader hot-swaps the served index from the container path. Reloads
// are serialized; a failed load, vertex-count mismatch or failed
// selfcheck rejects the replacement (releasing whatever was opened) and
// leaves the previous index serving.
type reloader struct {
	mu   sync.Mutex
	load func() (*index.HubLabels, error)
	srv  *server.Server
	g    *graph.Graph
	// path is the container file the loads read; a reload that fails
	// because the file is corrupt quarantines it (rename aside) so
	// retries don't spin on known-bad bytes. Empty disables quarantining.
	path      string
	selfcheck int
	sim       time.Duration
	// cooldown is the minimum interval the HTTP /reload door enforces
	// between reload attempts (0 disables). A reload is deliberately
	// expensive — a container open plus the optional selfcheck — and,
	// unlike queries, cannot ride the admission controller, so without a
	// cooldown any client reaching the HTTP port could loop POST /reload
	// as a cheap denial-of-service lever. SIGHUP (process-owner
	// privilege) bypasses the cooldown but still arms it.
	cooldown time.Duration
	last     time.Time
}

// reloadCooldown is the production /reload rate limit.
const reloadCooldown = time.Second

// errReloadThrottled reports a /reload attempt inside the cooldown
// window; the HTTP door answers 429 + Retry-After.
var errReloadThrottled = errors.New("hubserve: reload cooldown in effect, retry later")

// reload opens the container path again and swaps the result in under
// live traffic — the SIGHUP door, exempt from the cooldown. In-flight
// queries finish on the old snapshot; once the last of them drains the
// old index is released (for an mmap view, the munmap). It returns the
// new index's metadata.
func (rl *reloader) reload() (index.Meta, error) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return rl.reloadLocked()
}

// tryReload is the HTTP /reload door: reload, but refused inside the
// cooldown window.
func (rl *reloader) tryReload() (index.Meta, error) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	if rl.cooldown > 0 && time.Since(rl.last) < rl.cooldown {
		return index.Meta{}, errReloadThrottled
	}
	return rl.reloadLocked()
}

func (rl *reloader) reloadLocked() (index.Meta, error) {
	// Arm the cooldown at attempt start: failed attempts (the expensive
	// full-open-then-reject path) must count against the rate limit too.
	rl.last = time.Now()
	if err := faultinject.Fire(faultinject.PointReload); err != nil {
		return index.Meta{}, err
	}
	idx, err := rl.load()
	if err != nil {
		// A corrupt replacement is quarantined, not just rejected: the
		// previous index keeps serving either way, but leaving torn bytes
		// at the path would make every subsequent reload fail identically.
		if rl.path != "" && index.IsCorrupt(err) {
			if q, qerr := index.Quarantine(rl.path); qerr == nil {
				return index.Meta{}, fmt.Errorf("hubserve: replacement container is corrupt, quarantined to %s: %w", q, err)
			}
		}
		return index.Meta{}, err
	}
	if rl.g != nil {
		if idx.Meta().Vertices != rl.g.NumNodes() {
			n := idx.Meta().Vertices
			idx.Release()
			return index.Meta{}, fmt.Errorf("hubserve: replacement index has %d vertices, graph has %d", n, rl.g.NumNodes())
		}
		if rl.selfcheck > 0 {
			if err := index.VerifySampled(idx, rl.g, rl.selfcheck, 1); err != nil {
				idx.Release()
				return index.Meta{}, fmt.Errorf("hubserve: reload selfcheck: %w", err)
			}
		}
	}
	served := index.Index(idx)
	if rl.sim > 0 {
		served = &delayIndex{Index: idx, delay: rl.sim}
	}
	rl.srv.SwapRetire(served)
	return idx.Meta(), nil // Meta reads only array lengths: safe past the swap
}

// delayIndex adds a fixed service time to every query — a deliberately
// throttled backend for overload and admission-control testing. It does
// not implement index.Batcher, so every request pays the delay.
type delayIndex struct {
	index.Index
	delay time.Duration
}

func (d *delayIndex) Distance(u, v graph.NodeID) graph.Weight {
	time.Sleep(d.delay)
	return d.Index.Distance(u, v)
}

// Release forwards to the wrapped index so a throttled mmap view is
// still unmapped when the serving layer retires it.
func (d *delayIndex) Release() error {
	if r, ok := d.Index.(index.Releaser); ok {
		return r.Release()
	}
	return nil
}

// lineClient identifies the line-protocol connection to the admission
// controller. Each serveLines call is one connection (stdin today), so a
// fixed id per call is the per-connection identity.
var lineConnSeq int

// pathBufs pools path destination buffers across HTTP handler
// goroutines, so steady-state /path traffic reuses storage instead of
// allocating per request.
var pathBufs = sync.Pool{New: func() any { return new([]graph.NodeID) }}

// unsupported reports whether a query failed because the served index
// lacks the capability (no PathReporter/EccentricityReporter, or a
// hub-label index loaded from a version-1 container without parents).
func unsupported(err error) bool {
	return errors.Is(err, server.ErrUnsupported) || errors.Is(err, hub.ErrNoParents)
}

// lineDrainTimeout bounds how long a terminating line-protocol process
// waits for the in-flight query (there is at most one) to finish. A
// variable so the drain-timeout test doesn't take 5 real seconds.
var lineDrainTimeout = 5 * time.Second

// errDrainTimeout reports a graceful shutdown whose in-flight work did
// not finish inside the drain window.
var errDrainTimeout = errors.New("hubserve: drain timed out with queries still in flight")

// serveLinesMain runs the line protocol with a bounded graceful drain:
// when stop fires (SIGTERM/SIGINT), the current query — queries are
// answered one per line, so there is at most one — gets lineDrainTimeout
// to finish; a clean drain exits zero through the normal path, a wedged
// one exits non-zero immediately, deliberately skipping the deferred
// server Close whose no-query-in-flight contract no longer holds.
func serveLinesMain(srv *server.Server, in io.Reader, out io.Writer, stop <-chan struct{}) error {
	done := make(chan error, 1)
	go func() { done <- serveLines(srv, in, out, stop) }()
	select {
	case err := <-done:
		return err
	case <-stop:
		select {
		case err := <-done:
			return err
		case <-time.After(lineDrainTimeout):
			log.Print(errDrainTimeout)
			osExit(1)
			return errDrainTimeout // unreachable outside tests that stub osExit
		}
	}
}

// serveLines answers query lines from in until EOF, "quit" or stop: "u v"
// for a distance, "PATH u v" for one shortest path, "ECC v" for
// eccentricity plus a farthest vertex. Each response is flushed
// immediately so interactive clients that wait for an answer before the
// next query don't deadlock on the buffer. Overloaded requests answer
// "BUSY" — the line client's analogue of HTTP 429 — timed-out ones
// answer "TIMEOUT", and out-of-range or malformed queries answer an
// error line instead of panicking the process. The vertex bound is read
// per line from the served snapshot, so a SIGHUP reload to a
// different-size index re-validates correctly mid-stream.
func serveLines(srv *server.Server, in io.Reader, out io.Writer, stop <-chan struct{}) error {
	lineConnSeq++
	client := fmt.Sprintf("conn-%d", lineConnSeq)
	w := bufio.NewWriter(out)
	defer w.Flush()
	// Lines arrive through a goroutine so the loop can select against
	// stop; the goroutine itself may stay blocked in a stdin read until
	// the process exits, which is fine — it holds no server state.
	lines := make(chan string)
	scanErr := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(in)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			case <-stop:
				return
			}
		}
		scanErr <- sc.Err()
		close(lines)
	}()
	var pathBuf []graph.NodeID
loop:
	for {
		select {
		case <-stop:
			break loop
		case line, ok := <-lines:
			if !ok {
				if err := <-scanErr; err != nil {
					return err
				}
				break loop
			}
			if line == "" {
				continue
			}
			if line == "quit" {
				break loop
			}
			serveLine(srv, client, srv.Meta().Vertices, line, &pathBuf, w)
			if err := w.Flush(); err != nil {
				return err
			}
		}
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "served %d queries in %d groups across %d shards (%d rejected, %d shed, %d faulted, %d timeouts, health %s)\n",
		st.Served, st.Batches, st.Shards, st.Rejected, st.Shed, st.Faulted, st.Timeouts, st.Health)
	return nil
}

// busyLine and timeoutLine are the overload and deadline answers,
// written via io.WriteString so the shed path stays allocation-free: a
// flooding client the admission controller is rejecting must not cost
// the server a per-answer heap envelope (TestServeLineShedZeroAlloc).
const (
	busyLine    = "BUSY\n"
	timeoutLine = "TIMEOUT\n"
)

// splitLine splits a protocol line into at most 4 whitespace-separated
// fields without allocating (strings.Fields heap-allocates its result
// slice on every call — on a flooded connection that is a per-shed
// allocation). ok is false when a fifth field exists; no valid query
// has more than three, so the caller answers "bad query" either way.
func splitLine(line string, dst *[4]string) (int, bool) {
	n, i := 0, 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		j := i
		for j < len(line) && line[j] != ' ' && line[j] != '\t' {
			j++
		}
		if n == len(dst) {
			return n, false
		}
		dst[n] = line[i:j]
		n++
		i = j
	}
	return n, true
}

// serveLine parses and answers one protocol line. Field counts are
// strict — Sscanf would silently ignore trailing garbage ("1 2 3",
// "1 2.5") and answer a different query than the client sent.
func serveLine(srv *server.Server, client string, n int, line string, pathBuf *[]graph.NodeID, w io.Writer) {
	var fields [4]string
	nf, ok := splitLine(line, &fields)
	if !ok {
		fmt.Fprintf(w, "error: bad query %q (want: u v | PATH u v | ECC v)\n", line)
		return
	}
	switch {
	case nf > 0 && fields[0] == "PATH":
		var u, v int
		okU, okV := false, false
		if nf == 3 {
			var errU, errV error
			u, errU = strconv.Atoi(fields[1])
			v, errV = strconv.Atoi(fields[2])
			okU, okV = errU == nil, errV == nil
		}
		if !okU || !okV {
			fmt.Fprintf(w, "error: bad query %q (want: PATH u v)\n", line)
			return
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			fmt.Fprintf(w, "error: vertex out of range [0,%d)\n", n)
			return
		}
		path, err := srv.TryPath(client, graph.NodeID(u), graph.NodeID(v), (*pathBuf)[:0])
		*pathBuf = path
		switch {
		case errors.Is(err, server.ErrOverloaded):
			io.WriteString(w, busyLine)
		case errors.Is(err, server.ErrTimeout):
			io.WriteString(w, timeoutLine)
		case unsupported(err):
			fmt.Fprintf(w, "error: path queries unsupported by this index\n")
		case err != nil:
			fmt.Fprintf(w, "error: %v\n", err)
		case len(path) == 0:
			fmt.Fprintf(w, "path %d %d inf\n", u, v)
		default:
			fmt.Fprintf(w, "path %d %d", u, v)
			for _, x := range path {
				fmt.Fprintf(w, " %d", x)
			}
			fmt.Fprintf(w, "\n")
		}
	case nf > 0 && fields[0] == "ECC":
		var v int
		okV := false
		if nf == 2 {
			var errV error
			v, errV = strconv.Atoi(fields[1])
			okV = errV == nil
		}
		if !okV {
			fmt.Fprintf(w, "error: bad query %q (want: ECC v)\n", line)
			return
		}
		if v < 0 || v >= n {
			fmt.Fprintf(w, "error: vertex out of range [0,%d)\n", n)
			return
		}
		far, ecc, err := srv.TryFarthest(client, graph.NodeID(v))
		switch {
		case errors.Is(err, server.ErrOverloaded):
			io.WriteString(w, busyLine)
		case errors.Is(err, server.ErrTimeout):
			io.WriteString(w, timeoutLine)
		case unsupported(err):
			fmt.Fprintf(w, "error: eccentricity queries unsupported by this index\n")
		case err != nil:
			fmt.Fprintf(w, "error: %v\n", err)
		default:
			fmt.Fprintf(w, "ecc %d %d %d\n", v, ecc, far)
		}
	case nf == 2:
		u, errU := strconv.Atoi(fields[0])
		v, errV := strconv.Atoi(fields[1])
		if errU != nil || errV != nil {
			fmt.Fprintf(w, "error: bad query %q (want: u v)\n", line)
			return
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			fmt.Fprintf(w, "error: vertex out of range [0,%d)\n", n)
			return
		}
		d, err := srv.TryQuery(client, graph.NodeID(u), graph.NodeID(v))
		switch {
		case errors.Is(err, server.ErrOverloaded):
			io.WriteString(w, busyLine)
		case errors.Is(err, server.ErrTimeout):
			io.WriteString(w, timeoutLine)
		case err != nil:
			fmt.Fprintf(w, "error: %v\n", err)
		case d >= graph.Infinity:
			fmt.Fprintf(w, "%d %d inf\n", u, v)
		default:
			fmt.Fprintf(w, "%d %d %d\n", u, v, d)
		}
	default:
		fmt.Fprintf(w, "error: bad query %q (want: u v | PATH u v | ECC v)\n", line)
	}
}

// httpTimeouts bound how long a client may hold a connection in each
// phase; without them a single stalled client (slowloris) pins a handler
// goroutine forever.
type httpTimeouts struct {
	readHeader time.Duration
	read       time.Duration
	write      time.Duration
	idle       time.Duration
}

var defaultHTTPTimeouts = httpTimeouts{
	readHeader: 5 * time.Second,
	read:       10 * time.Second,
	write:      10 * time.Second,
	idle:       60 * time.Second,
}

// clientID extracts the admission-control identity of an HTTP request:
// the remote host without the ephemeral port, so reconnecting does not
// reset a flooder's buckets.
func clientID(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// queryParam extracts one raw query parameter without allocating.
// r.URL.Query() builds a url.Values map per request — paid even when
// the admission controller then sheds the query, which hands a flooder
// a per-rejection allocation on the server. Vertex ids are plain
// digits, so skipping percent-decoding is sound (a percent-escaped id
// fails strconv.Atoi and answers 400, same as any other malformed id).
func queryParam(raw, key string) string {
	for len(raw) > 0 {
		kv := raw
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			kv, raw = raw[:i], raw[i+1:]
		} else {
			raw = ""
		}
		if len(kv) > len(key) && kv[len(key)] == '=' && kv[:len(key)] == key {
			return kv[len(key)+1:]
		}
	}
	return ""
}

// vertexParam parses query parameter key as a vertex id in [0,n).
func vertexParam(r *http.Request, key string, n int) (int, bool) {
	x, err := strconv.Atoi(queryParam(r.URL.RawQuery, key))
	if err != nil || x < 0 || x >= n {
		return 0, false
	}
	return x, true
}

// Shared overload-response pieces: assigning the same []string into the
// header map and writing a constant body keeps the 429 path free of
// per-shed allocations (http.Error + Header().Set allocate both), so a
// flooder being rejected costs the server no heap. Pinned by
// TestHTTPShedZeroAlloc.
const overloadedBody = "overloaded, retry later\n"

var (
	retryAfterVal = []string{"1"}
	plainTextVal  = []string{"text/plain; charset=utf-8"}
)

// answer429 is the allocation-free analogue of
// http.Error(w, overloadedBody, http.StatusTooManyRequests) with a
// Retry-After hint.
func answer429(w http.ResponseWriter) {
	h := w.Header()
	h["Retry-After"] = retryAfterVal
	h["Content-Type"] = plainTextVal
	w.WriteHeader(http.StatusTooManyRequests)
	io.WriteString(w, overloadedBody)
}

// newMux builds the hubserve HTTP surface over srv. The vertex count is
// read per request from the served snapshot (it is O(1) there), so a
// /reload to a different-size index re-validates ids correctly without a
// restart. rl may be nil, in which case /reload answers 501.
func newMux(srv *server.Server, rl *reloader) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/distance", func(w http.ResponseWriter, r *http.Request) {
		n := srv.Meta().Vertices
		u, okU := vertexParam(r, "u", n)
		v, okV := vertexParam(r, "v", n)
		if !okU || !okV {
			http.Error(w, fmt.Sprintf("want /distance?u=U&v=V with vertices in [0,%d)", n),
				http.StatusBadRequest)
			return
		}
		d, err := srv.TryQuery(clientID(r), graph.NodeID(u), graph.NodeID(v))
		switch {
		case errors.Is(err, server.ErrOverloaded):
			answer429(w)
			return
		case errors.Is(err, server.ErrTimeout):
			http.Error(w, "query deadline exceeded", http.StatusGatewayTimeout)
			return
		case errors.Is(err, server.ErrBackendFault):
			http.Error(w, "backend fault while serving the query", http.StatusInternalServerError)
			return
		case err != nil: // ErrClosed: the process is on its way out
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if d >= graph.Infinity {
			fmt.Fprintf(w, `{"u":%d,"v":%d,"distance":null}`+"\n", u, v)
			return
		}
		fmt.Fprintf(w, `{"u":%d,"v":%d,"distance":%d}`+"\n", u, v, d)
	})
	mux.HandleFunc("/path", func(w http.ResponseWriter, r *http.Request) {
		n := srv.Meta().Vertices
		u, okU := vertexParam(r, "u", n)
		v, okV := vertexParam(r, "v", n)
		if !okU || !okV {
			http.Error(w, fmt.Sprintf("want /path?u=U&v=V with vertices in [0,%d)", n),
				http.StatusBadRequest)
			return
		}
		bp := pathBufs.Get().(*[]graph.NodeID)
		path, err := srv.TryPath(clientID(r), graph.NodeID(u), graph.NodeID(v), (*bp)[:0])
		*bp = path
		defer pathBufs.Put(bp)
		switch {
		case errors.Is(err, server.ErrOverloaded):
			answer429(w)
			return
		case errors.Is(err, server.ErrTimeout):
			http.Error(w, "query deadline exceeded", http.StatusGatewayTimeout)
			return
		case unsupported(err):
			http.Error(w, "path reporting unavailable (index has no parent column)",
				http.StatusNotImplemented)
			return
		case errors.Is(err, server.ErrClosed):
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
			return
		case err != nil:
			// A persistent query error (e.g. an inconsistent parent column
			// that fails to unpack) — not a shutdown: report it as such so
			// clients and load balancers do not retry forever.
			http.Error(w, "path query failed: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if len(path) == 0 {
			fmt.Fprintf(w, `{"u":%d,"v":%d,"path":null}`+"\n", u, v)
			return
		}
		fmt.Fprintf(w, `{"u":%d,"v":%d,"hops":%d,"path":[`, u, v, len(path)-1)
		for i, x := range path {
			if i > 0 {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, "%d", x)
		}
		io.WriteString(w, "]}\n")
	})
	mux.HandleFunc("/ecc", func(w http.ResponseWriter, r *http.Request) {
		n := srv.Meta().Vertices
		v, okV := vertexParam(r, "v", n)
		if !okV {
			http.Error(w, fmt.Sprintf("want /ecc?v=V with a vertex in [0,%d)", n),
				http.StatusBadRequest)
			return
		}
		far, ecc, err := srv.TryFarthest(clientID(r), graph.NodeID(v))
		switch {
		case errors.Is(err, server.ErrOverloaded):
			answer429(w)
			return
		case errors.Is(err, server.ErrTimeout):
			http.Error(w, "query deadline exceeded", http.StatusGatewayTimeout)
			return
		case unsupported(err):
			http.Error(w, "eccentricity reporting unavailable", http.StatusNotImplemented)
			return
		case errors.Is(err, server.ErrClosed):
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
			return
		case err != nil:
			http.Error(w, "eccentricity query failed: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"v":%d,"eccentricity":%d,"farthest":%d}`+"\n", v, ecc, far)
	})
	mux.HandleFunc("/reload", func(w http.ResponseWriter, r *http.Request) {
		if rl == nil {
			http.Error(w, "reload not configured", http.StatusNotImplemented)
			return
		}
		if r.Method != http.MethodPost {
			http.Error(w, "use POST /reload", http.StatusMethodNotAllowed)
			return
		}
		meta, err := rl.tryReload()
		switch {
		case errors.Is(err, errReloadThrottled):
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		case err != nil:
			// The previous index keeps serving; the client learns why the
			// replacement was rejected.
			http.Error(w, "reload failed: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"reloaded":true,"kind":%q,"n":%d}`+"\n", meta.Kind, meta.Vertices)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		st := srv.Stats()
		meta := srv.Meta()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"shards":%d,"served":%d,"batches":%d,"rejected":%d,"shed":%d,"hot_clients":%d,`+
			`"panics":%d,"faulted":%d,"timeouts":%d,"health":%q,"health_reason":%q,`+
			`"direct":%d,"direct_batches":%d,"hot_hits":%d,"hot_misses":%d,"hot_evicts":%d,`+
			`"representation":%q,"resident_bytes":%d,"container_bytes":%d}`+"\n",
			st.Shards, st.Served, st.Batches, st.Rejected, st.Shed, st.PerClientHot,
			st.Panics, st.Faulted, st.Timeouts, st.Health.String(), st.HealthReason,
			st.Direct, st.DirectBatches, st.HotHits, st.HotMisses, st.HotEvicts,
			meta.Representation, meta.ResidentBytes, meta.ContainerBytes)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Overload is by design NOT a health signal — a saturated server
		// still answers "ok" here; only backend panics and query timeouts
		// (the fault-health tracker) flip this to 503, telling the load
		// balancer to route away while /stats explains why.
		h, reason := srv.Health()
		if h != server.Healthy {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, `{"health":%q,"reason":%q}`+"\n", h.String(), reason)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// newHTTPServer assembles the hubserve http.Server: the mux plus the
// per-phase timeouts.
func newHTTPServer(srv *server.Server, rl *reloader, addr string, to httpTimeouts) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           newMux(srv, rl),
		ReadHeaderTimeout: to.readHeader,
		ReadTimeout:       to.read,
		WriteTimeout:      to.write,
		IdleTimeout:       to.idle,
	}
}

// httpDrainTimeout bounds the graceful HTTP drain on shutdown — both
// the signal-driven one and the one after a fatal listener error.
var httpDrainTimeout = 5 * time.Second

// serveHTTP exposes /distance, /path, /ecc, /reload, /stats and
// /healthz, and drains gracefully when stop fires (SIGTERM/SIGINT):
// in-flight handlers get httpDrainTimeout to finish — symmetric with
// the SIGHUP reload promise that no accepted query is dropped — after
// which the process exits non-zero rather than run the deferred server
// Close under live queries.
func serveHTTP(srv *server.Server, rl *reloader, addr string, stop <-chan struct{}) error {
	fmt.Fprintf(os.Stderr, "serving HTTP on %s\n", addr)
	hs := newHTTPServer(srv, rl, addr, defaultHTTPTimeouts)
	drained := make(chan error, 1)
	go func() {
		<-stop
		ctx, cancel := context.WithTimeout(context.Background(), httpDrainTimeout)
		defer cancel()
		drained <- hs.Shutdown(ctx)
	}()
	err := hs.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		// Signal-driven shutdown: ListenAndServe returned because the
		// drain goroutine called Shutdown; wait for its verdict.
		if serr := <-drained; serr != nil {
			log.Printf("hubserve: %v", errDrainTimeout)
			hs.Close()
			osExit(1)
			return errDrainTimeout // unreachable outside tests that stub osExit
		}
		st := srv.Stats()
		fmt.Fprintf(os.Stderr, "drained cleanly: served %d queries (%d rejected, %d shed, %d faulted, %d timeouts)\n",
			st.Served, st.Rejected, st.Shed, st.Faulted, st.Timeouts)
		return nil
	}
	// Fatal listener error: handler goroutines may still be inside
	// srv.TryQuery; drain them before the deferred srv.Close so its
	// no-query-in-flight contract holds. The drain is bounded — a stalled
	// client must not wedge the exit.
	ctx, cancel := context.WithTimeout(context.Background(), httpDrainTimeout)
	defer cancel()
	if serr := hs.Shutdown(ctx); serr != nil {
		// A handler survived the drain window, so the normal exit path
		// would run srv.Close under live queries; report and exit hard
		// instead (deferred cleanup is skipped deliberately).
		log.Printf("hubserve: %v (drain failed: %v)", err, serr)
		osExit(1)
	}
	return err
}
