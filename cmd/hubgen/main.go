// Command hubgen builds hub labelings with any of the library's
// constructions and reports size statistics and verification results.
//
// With -out the frozen labeling is persisted as an index container that
// cmd/hubserve, cmd/experiments and the library (index.Load) reload
// without rebuilding; -graphout writes the (possibly generated) graph so
// the two tools share inputs.
//
// Usage:
//
//	hubgen -gen gnm -n 500 -m 900 -algo pll
//	hubgen -gen reg3 -n 300 -algo thm41 -d 3
//	hubgen -gen road -n 400 -algo pll -order random
//	hubgen -in graph.gr -algo greedy
//	hubgen -gen gnm -n 10000 -algo pll -out labels.hli -graphout g.gr
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"hublab/internal/cover"
	"hublab/internal/faultinject"
	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/index"
	"hublab/internal/pll"
	"hublab/internal/sparsehub"
	"hublab/internal/ubound"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	genName := flag.String("gen", "gnm", "generator: gnm|reg3|grid|road|tree")
	in := flag.String("in", "", "read graph from file instead of generating")
	n := flag.Int("n", 500, "vertex count")
	m := flag.Int("m", 0, "edge count for gnm (default 1.8n)")
	seed := flag.Int64("seed", 1, "generator seed")
	algo := flag.String("algo", "pll", "labeling: pll|greedy|sparse|thm41|thm14")
	order := flag.String("order", "degree", "pll order: degree|random|natural")
	d := flag.Int("d", 0, "threshold D for sparse/thm41/thm14 (0 = auto)")
	verify := flag.Bool("verify", true, "verify the labeling (exhaustive ≤ 1000 vertices, sampled beyond)")
	out := flag.String("out", "", "write the labeling as an index container (.hli)")
	compress := flag.Bool("compress", false, "use the Elias-gamma container payload for -out")
	aligned := flag.Bool("aligned", false, "write the 64-byte-aligned v3 container for -out (servable zero-copy: hubserve -mmap)")
	graphOut := flag.String("graphout", "", "write the graph in the text format hubgen/hubserve read")
	flag.Parse()

	if spec, on, err := faultinject.EnableFromEnv(); err != nil {
		return fmt.Errorf("hubgen: %w", err)
	} else if on {
		log.Printf("hubgen: FAULT INJECTION ACTIVE (HUBLAB_FAULTS=%q) — this process will misbehave on purpose", spec)
	}
	// A previous hubgen that crashed mid-Save can leave ".hli-*" temp
	// siblings next to the output; they are never valid containers.
	if *out != "" {
		if removed, err := index.CleanPartials(filepath.Dir(*out)); err != nil {
			log.Printf("hubgen: cleaning partial containers: %v", err)
		} else if len(removed) > 0 {
			log.Printf("hubgen: removed %d partial container file(s): %v", len(removed), removed)
		}
	}

	g, err := loadGraph(*in, *genName, *n, *m, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("graph: n=%d m=%d max-degree=%d avg-degree=%.2f weighted=%v\n",
		g.NumNodes(), g.NumEdges(), g.MaxDegree(), g.AvgDegree(), g.Weighted())

	var labeling *hub.Labeling
	switch *algo {
	case "pll":
		opts := pll.Options{Seed: *seed}
		switch *order {
		case "random":
			opts.Order = pll.OrderRandom
		case "natural":
			opts.Order = pll.OrderNatural
		default:
			opts.Order = pll.OrderDegree
		}
		labeling, err = pll.Build(g, opts)
	case "greedy":
		labeling, err = cover.Greedy(g)
	case "sparse":
		var res *sparsehub.Result
		res, err = sparsehub.Build(g, sparsehub.Options{D: graph.Weight(*d), Seed: *seed})
		if err == nil {
			labeling = res.Labeling
			fmt.Printf("sparse scheme: D=%d |S|=%d balls=%d fixups=%d\n",
				res.D, res.SharedHubs, res.BallTotal, res.FixupTotal)
		}
	case "thm41":
		var res *ubound.Result
		res, err = ubound.Build(g, ubound.Options{D: graph.Weight(*d), Seed: *seed})
		if err == nil {
			labeling = res.Labeling
			fmt.Printf("thm4.1: D=%d |S|=%d ΣQ=%d ΣR=%d ΣF=%d ΣN(F)=%d matchings=%d violations=%d\n",
				res.D, res.SharedSize, res.QTotal, res.RTotal, res.FTotal, res.NFTotal,
				res.InducedMatchings, res.Violations)
		}
	case "thm14":
		var res *ubound.Result
		res, _, err = ubound.BuildForSparse(g, ubound.Options{D: graph.Weight(*d), Seed: *seed})
		if err == nil {
			labeling = res.Labeling
		}
	default:
		return fmt.Errorf("unknown algo %q", *algo)
	}
	if err != nil {
		return err
	}

	stats := labeling.ComputeStats()
	fmt.Printf("labeling: avg=%.2f max=%d total=%d avg-bits=%.1f\n",
		stats.Avg, stats.Max, stats.Total, labeling.AvgBits())
	fmt.Printf("reference n/log2(n) = %.1f\n", float64(g.NumNodes())/math.Log2(float64(g.NumNodes())+2))

	if *verify {
		if g.NumNodes() <= 1000 {
			if err := labeling.VerifyCover(g); err != nil {
				return err
			}
			fmt.Println("verified: exhaustive cover check passed")
		} else {
			if err := labeling.VerifySampled(g, 2000, 99); err != nil {
				return err
			}
			fmt.Println("verified: 2000 sampled pairs passed")
		}
	}

	if *graphOut != "" {
		f, err := os.Create(*graphOut)
		if err != nil {
			return err
		}
		if err := graph.Write(f, g); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote graph: %s\n", *graphOut)
	}
	if *out != "" {
		idx := index.NewHubLabelsFrom(labeling)
		if err := index.Save(*out, idx, hub.ContainerOptions{Compress: *compress, Aligned: *aligned}); err != nil {
			return err
		}
		info, err := os.Stat(*out)
		if err != nil {
			return err
		}
		serveHint := fmt.Sprintf("hubserve -index %s", *out)
		if *aligned {
			serveHint = fmt.Sprintf("hubserve -mmap -index %s", *out)
		}
		fmt.Printf("wrote container: %s (%d bytes, compress=%v aligned=%v; serve with: %s)\n",
			*out, info.Size(), *compress, *aligned, serveHint)
	}
	return nil
}

func loadGraph(in, genName string, n, m int, seed int64) (*graph.Graph, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.Read(f)
	}
	switch genName {
	case "gnm":
		if m == 0 {
			m = n * 9 / 5
		}
		return gen.Gnm(n, m, seed)
	case "reg3":
		return gen.RandomRegular(n, 3, seed)
	case "grid":
		side := int(math.Round(math.Sqrt(float64(n))))
		return gen.Grid(side, side)
	case "road":
		side := int(math.Round(math.Sqrt(float64(n))))
		return gen.RoadLike(side, side, 8, seed)
	case "tree":
		return gen.RandomTree(n, seed)
	default:
		return nil, fmt.Errorf("unknown generator %q", genName)
	}
}
