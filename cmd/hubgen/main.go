// Command hubgen builds hub labelings with any of the library's
// constructions and reports size statistics and verification results.
//
// With -out the labeling is persisted as an index container that
// cmd/hubserve, cmd/experiments and the library (index.Load) reload
// without rebuilding; -graphout writes the (possibly generated) graph so
// the two tools share inputs. For PLL without -compress the container is
// emitted through the streaming writer (index.SaveStreaming), so peak
// memory stays at about one copy of the labeling even at millions of
// vertices; see cmd/hubserve/README.md for the full build→serve
// pipeline.
//
// Usage:
//
//	hubgen -gen gnm -n 500 -m 900 -algo pll
//	hubgen -gen reg3 -n 300 -algo thm41 -d 3
//	hubgen -gen road -n 400 -algo pll -order betweenness
//	hubgen -gen rmat -n 1048576 -algo pll -workers 8 -progress -out labels.hli -aligned
//	hubgen -gen gnm -n 100000 -algo pll -out labels.hli -v4
//	hubgen -in USA-road-d.NY.gr.gz -algo pll
//	hubgen -dataset rome99 -algo pll -out rome.hli
//
// Exactly one container payload style may be given with -out: -compress
// (Elias-gamma, smallest file, decode-only load), -aligned (expanded v3,
// zero-copy mmap serving) or -v4/-compact (compressed v4, zero-copy mmap
// serving at a fraction of the resident bytes). They do not compose, and
// hubgen rejects conflicting combinations before building anything.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"hublab/internal/cover"
	"hublab/internal/dataset"
	"hublab/internal/faultinject"
	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/index"
	"hublab/internal/pll"
	"hublab/internal/sparsehub"
	"hublab/internal/ubound"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	genName := flag.String("gen", "gnm", "generator: gnm|reg3|grid|road|tree|btree|rmat")
	in := flag.String("in", "", "read graph from file (.gr/.gr.gz DIMACS or the hubgen text format)")
	ds := flag.String("dataset", "", "load a fetched DIMACS dataset: "+strings.Join(dataset.Names(), "|"))
	n := flag.Int("n", 500, "vertex count")
	m := flag.Int("m", 0, "edge count for gnm/rmat (default 1.8n)")
	seed := flag.Int64("seed", 1, "generator seed")
	algo := flag.String("algo", "pll", "labeling: pll|greedy|sparse|thm41|thm14")
	order := flag.String("order", "degree", "pll landmark order: "+strings.Join(pll.OrderNames(), "|"))
	workers := flag.Int("workers", 0, "parallel build workers for pll (0 = all cores, 1 = sequential)")
	progress := flag.Bool("progress", false, "log pll build progress (roots done, labels, peak RSS)")
	d := flag.Int("d", 0, "threshold D for sparse/thm41/thm14 (0 = auto)")
	verify := flag.Bool("verify", true, "verify the labeling (exhaustive ≤ 1000 vertices, sampled beyond)")
	out := flag.String("out", "", "write the labeling as an index container (.hli)")
	compress := flag.Bool("compress", false, "use the Elias-gamma container payload for -out")
	aligned := flag.Bool("aligned", false, "write the 64-byte-aligned v3 container for -out (servable zero-copy: hubserve -mmap)")
	v4 := flag.Bool("v4", false, "write the compact v4 container for -out (queryable compressed, servable zero-copy: hubserve -mmap)")
	compact := flag.Bool("compact", false, "alias for -v4")
	graphOut := flag.String("graphout", "", "write the graph in the text format hubgen/hubserve read")
	flag.Parse()
	useV4 := *v4 || *compact

	// Container payload options are validated before any build work: a
	// conflicting combination must fail in milliseconds, not after an
	// hour-long labeling construction. Exactly one payload style can be
	// chosen: -compress (gamma bits, decode-only), -aligned (expanded v3,
	// mmap-servable) or -v4 (compact, mmap-servable); each is a complete
	// layout and none of them compose. All three require -out.
	switch {
	case *compress && *aligned:
		return fmt.Errorf("hubgen: -compress and -aligned are mutually exclusive (gamma bits cannot be pointed at zero-copy)")
	case *compress && useV4:
		return fmt.Errorf("hubgen: -compress and -v4 are mutually exclusive (the compact layout has its own encoding)")
	case *aligned && useV4:
		return fmt.Errorf("hubgen: -aligned and -v4 are mutually exclusive (each is a complete mmap-servable layout)")
	case (*compress || *aligned || useV4) && *out == "":
		return fmt.Errorf("hubgen: -compress/-aligned/-v4 shape the container written by -out; pass -out")
	}

	if spec, on, err := faultinject.EnableFromEnv(); err != nil {
		return fmt.Errorf("hubgen: %w", err)
	} else if on {
		log.Printf("hubgen: FAULT INJECTION ACTIVE (HUBLAB_FAULTS=%q) — this process will misbehave on purpose", spec)
	}
	// A previous hubgen that crashed mid-Save can leave ".hli-*" temp
	// siblings next to the output; they are never valid containers.
	if *out != "" {
		if removed, err := index.CleanPartials(filepath.Dir(*out)); err != nil {
			log.Printf("hubgen: cleaning partial containers: %v", err)
		} else if len(removed) > 0 {
			log.Printf("hubgen: removed %d partial container file(s): %v", len(removed), removed)
		}
	}

	g, err := loadGraph(*in, *ds, *genName, *n, *m, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("graph: n=%d m=%d max-degree=%d avg-degree=%.2f weighted=%v\n",
		g.NumNodes(), g.NumEdges(), g.MaxDegree(), g.AvgDegree(), g.Weighted())

	// PLL without gamma compression builds unfrozen and streams the
	// container out; everything else freezes (and gamma needs the flat
	// form anyway).
	streaming := *algo == "pll" && *out != "" && !*compress

	var labeling *hub.Labeling
	buildStart := time.Now()
	switch *algo {
	case "pll":
		opts := pll.Options{Seed: *seed, OrderBy: *order, Workers: *workers}
		if *progress {
			opts.Progress = progressLogger(g.NumNodes(), buildStart)
		}
		if streaming {
			labeling, err = pll.BuildUnfrozen(g, opts)
		} else {
			labeling, err = pll.Build(g, opts)
		}
	case "greedy":
		labeling, err = cover.Greedy(g)
	case "sparse":
		var res *sparsehub.Result
		res, err = sparsehub.Build(g, sparsehub.Options{D: graph.Weight(*d), Seed: *seed})
		if err == nil {
			labeling = res.Labeling
			fmt.Printf("sparse scheme: D=%d |S|=%d balls=%d fixups=%d\n",
				res.D, res.SharedHubs, res.BallTotal, res.FixupTotal)
		}
	case "thm41":
		var res *ubound.Result
		res, err = ubound.Build(g, ubound.Options{D: graph.Weight(*d), Seed: *seed})
		if err == nil {
			labeling = res.Labeling
			fmt.Printf("thm4.1: D=%d |S|=%d ΣQ=%d ΣR=%d ΣF=%d ΣN(F)=%d matchings=%d violations=%d\n",
				res.D, res.SharedSize, res.QTotal, res.RTotal, res.FTotal, res.NFTotal,
				res.InducedMatchings, res.Violations)
		}
	case "thm14":
		var res *ubound.Result
		res, _, err = ubound.BuildForSparse(g, ubound.Options{D: graph.Weight(*d), Seed: *seed})
		if err == nil {
			labeling = res.Labeling
		}
	default:
		return fmt.Errorf("unknown algo %q", *algo)
	}
	if err != nil {
		return err
	}
	buildDur := time.Since(buildStart)

	stats := labeling.ComputeStats()
	fmt.Printf("labeling: avg=%.2f max=%d total=%d avg-bits=%.1f\n",
		stats.Avg, stats.Max, stats.Total, labeling.AvgBits())
	if secs := buildDur.Seconds(); secs > 0 {
		fmt.Printf("build: %.2fs (%.0f labels/sec, workers=%d)\n", secs, float64(stats.Total)/secs, *workers)
	}
	fmt.Printf("reference n/log2(n) = %.1f\n", float64(g.NumNodes())/math.Log2(float64(g.NumNodes())+2))

	if *verify {
		if g.NumNodes() <= 1000 {
			if err := labeling.VerifyCover(g); err != nil {
				return err
			}
			fmt.Println("verified: exhaustive cover check passed")
		} else {
			if err := labeling.VerifySampled(g, 2000, 99); err != nil {
				return err
			}
			fmt.Println("verified: 2000 sampled pairs passed")
		}
	}

	if *graphOut != "" {
		f, err := os.Create(*graphOut)
		if err != nil {
			return err
		}
		if err := graph.Write(f, g); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote graph: %s\n", *graphOut)
	}
	if *out != "" {
		copts := hub.ContainerOptions{Compress: *compress, Aligned: *aligned, Compact: useV4}
		if streaming {
			err = index.SaveStreaming(*out, labeling, copts)
		} else {
			err = index.Save(*out, index.NewHubLabelsFrom(labeling), copts)
		}
		if err != nil {
			return err
		}
		info, err := os.Stat(*out)
		if err != nil {
			return err
		}
		serveHint := fmt.Sprintf("hubserve -index %s", *out)
		if *aligned || useV4 {
			serveHint = fmt.Sprintf("hubserve -mmap -index %s", *out)
		}
		fmt.Printf("wrote container: %s (%d bytes, compress=%v aligned=%v v4=%v streamed=%v; serve with: %s)\n",
			*out, info.Size(), *compress, *aligned, useV4, streaming, serveHint)
	}
	return nil
}

// progressLogger returns a pll.Progress callback that logs at most once
// every two seconds: roots done, labels committed, throughput, and the
// process's peak RSS so far (the number the streaming pipeline exists
// to keep flat).
func progressLogger(roots int, start time.Time) func(pll.Progress) {
	var last time.Time
	return func(p pll.Progress) {
		now := time.Now()
		if p.RootsDone < p.Roots && now.Sub(last) < 2*time.Second {
			return
		}
		last = now
		secs := now.Sub(start).Seconds()
		rate := float64(p.Labels)
		if secs > 0 {
			rate /= secs
		}
		log.Printf("hubgen: pll %d/%d roots, %d labels (%.0f labels/sec), peak RSS %s",
			p.RootsDone, p.Roots, p.Labels, rate, peakRSS())
	}
}

// peakRSS reports the process high-water mark: VmHWM from
// /proc/self/status where available, else the Go heap's HeapSys as a
// lower-bound stand-in.
func peakRSS() string {
	if data, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, "VmHWM:") {
				return strings.TrimSpace(strings.TrimPrefix(line, "VmHWM:"))
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return fmt.Sprintf("%d kB (heap)", ms.HeapSys/1024)
}

func loadGraph(in, ds, genName string, n, m int, seed int64) (*graph.Graph, error) {
	if in != "" && ds != "" {
		return nil, fmt.Errorf("hubgen: -in and -dataset are mutually exclusive")
	}
	if ds != "" {
		return dataset.Load(ds)
	}
	if in != "" {
		if strings.HasSuffix(in, ".gr") || strings.HasSuffix(in, ".gr.gz") {
			return dataset.LoadFile(in)
		}
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.Read(f)
	}
	switch genName {
	case "gnm":
		if m == 0 {
			m = n * 9 / 5
		}
		return gen.Gnm(n, m, seed)
	case "reg3":
		return gen.RandomRegular(n, 3, seed)
	case "grid":
		side := int(math.Round(math.Sqrt(float64(n))))
		return gen.Grid(side, side)
	case "road":
		side := int(math.Round(math.Sqrt(float64(n))))
		return gen.RoadLike(side, side, 8, seed)
	case "tree":
		return gen.RandomTree(n, seed)
	case "btree":
		leaves := 1
		for 2*leaves-1 < n {
			leaves <<= 1
		}
		return gen.BalancedBinaryTree(leaves)
	case "rmat":
		scale := 0
		for 1<<scale < n {
			scale++
		}
		if m == 0 {
			m = n * 9 / 5
		}
		return gen.RMAT(scale, m, seed)
	default:
		return nil, fmt.Errorf("unknown generator %q", genName)
	}
}
