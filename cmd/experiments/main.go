// Command experiments reproduces every experiment in DESIGN.md's
// per-experiment index (E1–E12 plus the extension experiments E13–E26),
// printing one table per experiment. The output of `experiments -run all`
// is the source of EXPERIMENTS.md.
//
// With -cache the expensive PLL labelings are persisted as index
// containers under the given directory and reloaded on later runs
// instead of being rebuilt: E10 caches its Gnm(3k) labels, E18 its
// Gnm(10k) serving index. E17 measures the rebuild-vs-load tradeoff
// itself, so it always rebuilds — but it saves its result into the
// cache, seeding E18 and later runs.
//
// Usage:
//
//	experiments -run all
//	experiments -run E4,E5
//	experiments -run E10,E17,E18 -cache /tmp/hlicache
package main

import (
	"bufio"
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hublab/internal/approx"
	"hublab/internal/cover"
	"hublab/internal/dataset"
	"hublab/internal/dlabel"
	"hublab/internal/faultinject"
	"hublab/internal/flowctl"
	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/hdim"
	"hublab/internal/hhl"
	"hublab/internal/hub"
	"hublab/internal/hubclient"
	"hublab/internal/index"
	"hublab/internal/index/indextest"
	"hublab/internal/lbound"
	"hublab/internal/netserve"
	"hublab/internal/oracle"
	"hublab/internal/pll"
	"hublab/internal/rs"
	"hublab/internal/server"
	"hublab/internal/sparsehub"
	"hublab/internal/sssp"
	"hublab/internal/sumindex"
	"hublab/internal/ubound"
	"hublab/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

var experiments = []struct {
	id   string
	desc string
	fn   func() error
}{
	{"E1", "Figure 1: the two paths of H_{2,2}", e1},
	{"E2", "Theorem 2.1 (i)+(ii): size and degree of G_{b,l}", e2},
	{"E3", "Lemma 2.2: unique midpoint shortest paths", e3},
	{"E4", "Theorem 2.1 (iii)/1.1: certified lower bound vs real labelings", e4},
	{"E5", "Theorem 1.6: Sum-Index via distance labels", e5},
	{"E6", "Theorem 4.1: upper-bound pipeline decomposition", e6},
	{"E7", "Ruzsa-Szemeredi substrate: Behrend sets and induced matchings", e7},
	{"E8", "ADKP16/GKU16-style sparse scheme: n/log n shape", e8},
	{"E9", "Distance label bit sizes across schemes", e9},
	{"E10", "Query time: labels vs graph search", e10},
	{"E11", "Eq. (1) ablation: monotone closure blow-up", e11},
	{"E12", "Structure helps: road-like vs random sparse", e12},
	{"E13", "Extension: the S*T oracle tradeoff (paper §1)", e13},
	{"E14", "Extension: PLL equals canonical hierarchical labeling (ADGW12)", e14},
	{"E15", "Extension: +2-error hub labels and correction tables (paper §1.1)", e15},
	{"E16", "Extension: highway dimension estimates (ADF+16)", e16},
	{"E17", "Serving: container load vs PLL rebuild", e17},
	{"E18", "Serving: sharded server throughput vs worker count", e18},
	{"E19", "Serving: fair admission control under overload", e19},
	{"E20", "Serving: path unpacking and eccentricity query cost", e20},
	{"E21", "Serving: zero-copy mmap open, first-touch cost, shared memory", e21},
	{"E22", "Robustness: chaos storm — injected panics, corrupt reloads, exact accounting", e22},
	{"E23", "Build pipeline: parallel PLL throughput, byte-equality, streaming memory", e23},
	{"E24", "Serving: compressed v4 vs expanded v3 — resident bytes and query latency", e24},
	{"E26", "Fleet: binary batch door vs HTTP door, goodput and shed sharing under flood", e26},
}

// cacheDir, when non-empty, holds persisted index containers so repeated
// runs load instead of rebuild.
var cacheDir string

func run() error {
	sel := flag.String("run", "all", "comma-separated experiment ids or 'all'")
	flag.StringVar(&cacheDir, "cache", "", "directory for cached index containers (empty = rebuild every run)")
	holdMode := flag.String("hold", "", "internal (E21 child): load -holdindex ('mmap' or 'decode'), report memory, wait for stdin EOF")
	holdIndex := flag.String("holdindex", "", "internal (E21 child): container path for -hold")
	flag.Parse()
	if *holdMode != "" {
		return runHold(*holdMode, *holdIndex)
	}
	want := map[string]bool{}
	all := *sel == "all"
	for _, id := range strings.Split(*sel, ",") {
		want[strings.TrimSpace(strings.ToUpper(id))] = true
	}
	for _, e := range experiments {
		if !all && !want[e.id] {
			continue
		}
		fmt.Printf("==== %s: %s ====\n", e.id, e.desc)
		start := time.Now()
		if err := e.fn(); err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Printf("(%s done in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func e1() error {
	fig, err := lbound.FigureOne()
	if err != nil {
		return err
	}
	fmt.Printf("A = %d\n", fig.A)
	fmt.Printf("blue path length: %d  (paper: 4A+4 = %d)  unique=%v via-midpoint=%v\n",
		fig.BlueLength, 4*fig.A+4, fig.Unique, fig.ViaMid)
	fmt.Printf("red  path length: %d  (paper: 4A+8 = %d)\n", fig.RedLength, 4*fig.A+8)
	return nil
}

func e2() error {
	fmt.Println("  b  l     n(H)     m(H)       n(G)  bound(4s·nH+ΣW)  maxdeg  dist-check")
	for _, p := range []lbound.Params{{B: 1, L: 1}, {B: 2, L: 1}, {B: 1, L: 2}, {B: 2, L: 2}, {B: 3, L: 2}} {
		e, err := lbound.BuildG(p)
		if err != nil {
			return err
		}
		h := e.H
		bound := int64(4*p.Side()*h.G.NumNodes()) + h.G.TotalWeight()
		// Spot-check bottom-top distance equality on a few pairs.
		layer := p.LayerSize()
		ok := true
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 5; i++ {
			u := graph.NodeID(rng.Intn(layer))
			v := graph.NodeID(2*p.L*layer + rng.Intn(layer))
			hd := sssp.Dijkstra(h.G, u).Dist[v]
			gd := sssp.BFS(e.G, e.CenterOf(u)).Dist[e.CenterOf(v)]
			if hd != gd {
				ok = false
			}
		}
		fmt.Printf("  %d  %d %8d %8d %10d %16d %7d  %v\n",
			p.B, p.L, h.G.NumNodes(), h.G.NumEdges(), e.G.NumNodes(), bound, e.G.MaxDegree(), ok)
	}
	return nil
}

func e3() error {
	fmt.Println("  b  l   pairs-checked  violations   (H_{b,l}, exhaustive)")
	for _, p := range []lbound.Params{{B: 1, L: 1}, {B: 2, L: 1}, {B: 1, L: 2}, {B: 2, L: 2}, {B: 3, L: 2}} {
		h, err := lbound.BuildH(p)
		if err != nil {
			return err
		}
		checked, bad, err := h.VerifyLemma22All()
		if err != nil {
			return err
		}
		fmt.Printf("  %d  %d   %13d  %10v\n", p.B, p.L, checked, bad != nil)
	}
	// And on the expanded degree-3 graph for the Figure 1 instance.
	e, err := lbound.BuildG(lbound.Params{B: 2, L: 2})
	if err != nil {
		return err
	}
	rep, err := e.VerifyLemma22([]int{1, 0}, []int{3, 2})
	if err != nil {
		return err
	}
	fmt.Printf("  G_{2,2} spot check (Figure 1 pair): ok=%v length=%d\n", rep.Ok(), rep.Length)
	return nil
}

func e4() error {
	fmt.Println("  b  l     n(H)   certified-LB   PLL-avg   greedy-avg   PLL/LB")
	for _, p := range []lbound.Params{{B: 2, L: 2}, {B: 3, L: 2}, {B: 4, L: 2}, {B: 2, L: 3}} {
		h, err := lbound.BuildH(p)
		if err != nil {
			return err
		}
		cert := h.CertificateH()
		labels, err := pll.Build(h.G, pll.Options{})
		if err != nil {
			return err
		}
		avg := labels.ComputeStats().Avg
		greedyStr := "-"
		if h.G.NumNodes() <= 450 {
			gl, err := cover.Greedy(h.G)
			if err != nil {
				return err
			}
			greedyStr = fmt.Sprintf("%.2f", gl.ComputeStats().Avg)
		}
		fmt.Printf("  %d  %d %8d   %12.3f  %8.2f   %10s   %6.1f\n",
			p.B, p.L, h.G.NumNodes(), cert.AvgHubLB, avg, greedyStr, avg/cert.AvgHubLB)
	}
	fmt.Println("  (LB must stay below every real labeling; both grow ~(s/2)^l = n/quasipolylog)")
	return nil
}

func e5() error {
	fmt.Println("  b  l    m   pairs  max-msg-bits  trivial-bits  correct")
	for _, bl := range [][2]int{{2, 2}, {3, 2}, {2, 3}} {
		gp, err := sumindex.NewGraphProtocol(bl[0], bl[1])
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(9))
		bits := make([]bool, gp.M())
		for i := range bits {
			bits[i] = rng.Intn(2) == 1
		}
		in := sumindex.NewInstance(bits)
		sess, err := gp.NewSession(in)
		if err != nil {
			return err
		}
		pairs, maxBits, err := sess.VerifyAll(in)
		correct := err == nil
		if err != nil {
			return err
		}
		tr, err := sumindex.Trivial(in, 0, 0)
		if err != nil {
			return err
		}
		fmt.Printf("  %d  %d  %3d  %6d  %12d  %12d  %v\n",
			bl[0], bl[1], gp.M(), pairs, maxBits, tr.AliceBits, correct)
	}
	return nil
}

func e6() error {
	g, err := gen.RandomRegular(300, 3, 11)
	if err != nil {
		return err
	}
	fmt.Printf("  graph: random 3-regular n=%d m=%d\n", g.NumNodes(), g.NumEdges())
	fmt.Println("  D  colors   |S|    ΣQ    ΣR    ΣF   ΣN(F)  avg|H_v|  matchings  violations  cover")
	for _, d := range []graph.Weight{2, 3, 4, 5} {
		res, err := ubound.Build(g, ubound.Options{D: d, Seed: 3})
		if err != nil {
			return err
		}
		coverOK := res.Labeling.VerifyCover(g) == nil
		fmt.Printf("  %d  %6d  %4d  %5d %5d %5d  %5d   %7.1f  %9d  %10d  %v\n",
			d, res.Colors, res.SharedSize, res.QTotal, res.RTotal, res.FTotal, res.NFTotal,
			res.Labeling.ComputeStats().Avg, res.InducedMatchings, res.Violations, coverOK)
	}
	// Theorem 1.4 on an average-degree graph with high-degree vertices.
	b := graph.NewBuilder(200, 400)
	for v := graph.NodeID(1); v < 60; v++ {
		b.AddEdge(0, v)
	}
	for v := graph.NodeID(60); v < 199; v++ {
		b.AddEdge(v, v+1)
	}
	b.AddEdge(199, 0)
	b.AddEdge(59, 60)
	hg, err := b.Build()
	if err != nil {
		return err
	}
	res, red, err := ubound.BuildForSparse(hg, ubound.Options{D: 3, Seed: 3})
	if err != nil {
		return err
	}
	fmt.Printf("  Thm 1.4: n=%d maxdeg=%d -> reduced n=%d maxdeg=%d; projected cover ok=%v avg=%.1f\n",
		hg.NumNodes(), hg.MaxDegree(), red.G.NumNodes(), red.G.MaxDegree(),
		res.Labeling.VerifyCover(hg) == nil, res.Labeling.ComputeStats().Avg)
	return nil
}

func e7() error {
	fmt.Println("  Behrend sets:    N     |B|    N/|B|   AP-free")
	for _, n := range []int{64, 256, 1024, 4096, 16384, 65536} {
		set := rs.BehrendSet(n)
		fmt.Printf("  %16d  %6d  %6.1f   %v\n", n, len(set), float64(n)/float64(len(set)), rs.IsProgressionFree(set))
	}
	tgN := 512
	tg, err := rs.NewTriangleGraph(tgN, rs.BehrendSet(tgN/3))
	if err != nil {
		return err
	}
	fmt.Printf("  triangle graph: n=%d vertices=%d edges=%d unique-triangles=%v\n",
		tgN, tg.NumVertices(), tg.NumEdges(), tg.VerifyUniqueTriangles() == nil)
	fmt.Println("  matching family:  s  l  rho  edges  matchings  induced")
	for _, sl := range [][2]int{{4, 2}, {6, 2}, {8, 2}, {4, 3}} {
		rho, _, err := rs.BestShell(sl[0], sl[1], 2*sl[0])
		if err != nil {
			return err
		}
		mf, err := rs.NewMatchingFamily(sl[0], sl[1], rho)
		if err != nil {
			return err
		}
		fmt.Printf("  %18d %2d %4d  %5d  %9d  %v\n",
			sl[0], sl[1], rho, mf.NumEdges(), mf.NumMatchings(), mf.VerifyInduced() == nil)
	}
	return nil
}

func e8() error {
	fmt.Println("   n     D   |S|  avg-ball  fixups  avg|S(v)|  n/log2(n)  ratio  verified")
	for _, n := range []int{128, 256, 512, 1024} {
		g, err := gen.RandomRegular(n, 3, int64(n))
		if err != nil {
			return err
		}
		res, err := sparsehub.Build(g, sparsehub.Options{Seed: int64(n)})
		if err != nil {
			return err
		}
		verified := false
		if n <= 512 {
			verified = res.Labeling.VerifyCover(g) == nil
		} else {
			verified = res.Labeling.VerifySampled(g, 1000, 5) == nil
		}
		avg := res.Labeling.ComputeStats().Avg
		ref := float64(n) / math.Log2(float64(n))
		fmt.Printf("  %5d  %3d  %4d  %8.1f  %6d  %9.1f  %9.1f  %5.2f  %v\n",
			n, res.D, res.SharedHubs, float64(res.BallTotal)/float64(n),
			res.FixupTotal, avg, ref, avg/ref, verified)
	}
	return nil
}

func e9() error {
	g, err := gen.RandomRegular(256, 3, 21)
	if err != nil {
		return err
	}
	labels, err := pll.Build(g, pll.Options{})
	if err != nil {
		return err
	}
	hubBits, err := dlabel.HubLabels(labels)
	if err != nil {
		return err
	}
	euler, err := dlabel.EulerTour(g)
	if err != nil {
		return err
	}
	fmt.Printf("  sparse 3-regular n=256:  hub-gamma avg=%.0f bits  euler-log3 avg=%.0f bits  (2n·log2 3=%.0f)\n",
		hubBits.AvgBits(), euler.AvgBits(), 2*256*math.Log2(3))
	tree, err := gen.RandomTree(255, 4)
	if err != nil {
		return err
	}
	cl, err := dlabel.Centroid(tree)
	if err != nil {
		return err
	}
	cBits, err := dlabel.HubLabels(cl)
	if err != nil {
		return err
	}
	treeEuler, err := dlabel.EulerTour(tree)
	if err != nil {
		return err
	}
	lg := math.Log2(255)
	fmt.Printf("  tree n=255: centroid avg=%.0f bits (~log² n=%.0f)  euler avg=%.0f bits  max-hubs=%d (≤2log n+3=%d)\n",
		cBits.AvgBits(), lg*lg, treeEuler.AvgBits(), cl.ComputeStats().Max, int(2*lg)+3)
	return nil
}

// cachedPLL returns a PLL hub-label index for g, loading it from the
// container cache when -cache is set and a prior run saved a usable
// container, and rebuilding (then saving) otherwise. A stale, corrupt or
// version-incompatible cache file is not fatal — it is rebuilt over.
func cachedPLL(key string, g *graph.Graph) (idx *index.HubLabels, cached bool, err error) {
	var path string
	if cacheDir != "" {
		path = filepath.Join(cacheDir, key+".hli")
		loaded, err := index.Load(path)
		switch {
		case err == nil && loaded.Meta().Vertices == g.NumNodes():
			// The container records no graph identity, so a stale file
			// can match on vertex count alone; spot-check distances
			// before trusting it with experiment numbers.
			if verr := index.VerifySampled(loaded, g, 64, 23); verr != nil {
				fmt.Printf("  (cache %s stale, rebuilding: %v)\n", path, verr)
				break
			}
			fmt.Printf("  (loaded cached index %s)\n", path)
			return loaded, true, nil
		case err != nil && !os.IsNotExist(err):
			fmt.Printf("  (cache %s unusable, rebuilding: %v)\n", path, err)
		}
	}
	labels, err := pll.Build(g, pll.Options{})
	if err != nil {
		return nil, false, err
	}
	idx = index.NewHubLabelsFrom(labels)
	if err := saveCache(key, idx); err != nil {
		return nil, false, err
	}
	return idx, false, nil
}

// saveCache persists idx as <cacheDir>/<key>.hli so cachedPLL finds it
// on the next run; a no-op without -cache.
func saveCache(key string, idx *index.HubLabels) error {
	if cacheDir == "" {
		return nil
	}
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(cacheDir, key+".hli")
	if err := index.Save(path, idx, hub.ContainerOptions{}); err != nil {
		return err
	}
	fmt.Printf("  (saved index container %s)\n", path)
	return nil
}

func e10() error {
	g, err := gen.Gnm(3000, 5400, 17)
	if err != nil {
		return err
	}
	idx, _, err := cachedPLL("e10-gnm3000", g)
	if err != nil {
		return err
	}
	labels := idx.Flat()
	rng := rand.New(rand.NewSource(5))
	const q = 300
	pairs := make([][2]graph.NodeID, q)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{graph.NodeID(rng.Intn(3000)), graph.NodeID(rng.Intn(3000))}
	}
	start := time.Now()
	for _, p := range pairs {
		labels.Query(p[0], p[1])
	}
	tLabel := time.Since(start) / q
	start = time.Now()
	for _, p := range pairs[:30] {
		sssp.Distance(g, p[0], p[1])
	}
	tBidi := time.Since(start) / 30
	start = time.Now()
	for _, p := range pairs[:30] {
		sssp.BFS(g, p[0])
	}
	tBFS := time.Since(start) / 30
	stats := labels.ComputeStats()
	fmt.Printf("  n=3000 m=5400: label space=%d hubs (avg %.1f/vertex)\n", stats.Total, stats.Avg)
	fmt.Printf("  per-query: labels=%v  bidirectional=%v  full-BFS=%v\n", tLabel, tBidi, tBFS)
	return nil
}

func e11() error {
	fmt.Println("  b  l   hop-diam   avg|S|   avg|S*|   blow-up  (bound: ≤ hop-diam)")
	for _, p := range []lbound.Params{{B: 2, L: 2}, {B: 3, L: 2}} {
		h, err := lbound.BuildH(p)
		if err != nil {
			return err
		}
		labels, err := pll.Build(h.G, pll.Options{})
		if err != nil {
			return err
		}
		closed, err := hub.MonotoneClosure(h.G, labels)
		if err != nil {
			return err
		}
		a, c := labels.ComputeStats().Avg, closed.ComputeStats().Avg
		cert := h.CertificateH()
		fmt.Printf("  %d  %d   %8d   %6.2f   %7.2f   %7.3f\n",
			p.B, p.L, cert.HopBound, a, c, c/a)
	}
	return nil
}

func e12() error {
	road, err := gen.RoadLike(32, 32, 8, 3)
	if err != nil {
		return err
	}
	random, err := gen.RandomRegular(1024, 3, 3)
	if err != nil {
		return err
	}
	grid, err := gen.Grid(32, 32)
	if err != nil {
		return err
	}
	sepOrder, err := pll.GridSeparatorOrder(32, 32)
	if err != nil {
		return err
	}
	hwyOrder, err := pll.RoadHighwayOrder(32, 32, 8)
	if err != nil {
		return err
	}
	fmt.Println("  graph (n=1024)      landmark order   avg|S(v)|   max|S(v)|")
	for _, tc := range []struct {
		name, order string
		g           *graph.Graph
		opts        pll.Options
	}{
		{"random 3-regular", "degree", random, pll.Options{}},
		{"unit grid", "degree", grid, pll.Options{}},
		{"unit grid", "separator", grid, pll.Options{Custom: sepOrder}},
		{"road-like", "degree", road, pll.Options{}},
		{"road-like", "highway-first", road, pll.Options{Custom: hwyOrder}},
	} {
		labels, err := pll.Build(tc.g, tc.opts)
		if err != nil {
			return err
		}
		if err := labels.VerifySampled(tc.g, 300, 1); err != nil {
			return err
		}
		s := labels.ComputeStats()
		fmt.Printf("  %-18s  %-14s  %9.1f   %9d\n", tc.name, tc.order, s.Avg, s.Max)
	}
	fmt.Println("  (structure-aware orders exploit separators/highways; degree order cannot;")
	fmt.Println("   random sparse graphs have no such structure to exploit — the paper's regime)")
	return nil
}

func e13() error {
	g, err := gen.RandomRegular(400, 3, 13)
	if err != nil {
		return err
	}
	points, err := oracle.Tradeoff(g, 400)
	if err != nil {
		return err
	}
	fmt.Printf("  random 3-regular n=%d m=%d (cross-checked on 400 sampled pairs)\n",
		g.NumNodes(), g.NumEdges())
	fmt.Println("  oracle       space-bytes   avg-query-ops    S*T-product")
	for _, p := range points {
		fmt.Printf("  %-11s  %11d   %13.1f   %12.3g\n",
			p.Name, p.SpaceBytes, p.AvgQueryOps, p.SpaceTimeProduct)
	}
	fmt.Println("  (hub labels sit between the matrix and pure search; the paper's")
	fmt.Println("   lower bound explains why their space stays near-linear·n on sparse inputs)")
	return nil
}

func e14() error {
	fmt.Println("  n    m    order    PLL==canonical   hierarchical")
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{40, 80, 120} {
		g, err := gen.Gnm(n, 2*n, int64(n))
		if err != nil {
			return err
		}
		order := make([]graph.NodeID, n)
		for i := range order {
			order[i] = graph.NodeID(i)
		}
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		fast, err := pll.Build(g, pll.Options{Custom: order})
		if err != nil {
			return err
		}
		ref, err := hhl.Canonical(g, order)
		if err != nil {
			return err
		}
		equal, diff := hhl.Equal(fast, ref)
		hier, err := hhl.IsHierarchical(fast, order)
		if err != nil {
			return err
		}
		fmt.Printf("  %3d  %3d  random   %14v   %12v\n", n, g.NumEdges(), equal, hier)
		if !equal {
			return fmt.Errorf("PLL differs from canonical: %s", diff)
		}
	}
	fmt.Println("  (two independent implementations agree hub-for-hub: the minimality")
	fmt.Println("   theorem of hierarchical hub labelings, executable)")
	return nil
}

func e15() error {
	g, err := gen.RandomRegular(300, 3, 5)
	if err != nil {
		return err
	}
	exact, err := pll.Build(g, pll.Options{})
	if err != nil {
		return err
	}
	res, err := approx.Collapse(g)
	if err != nil {
		return err
	}
	hist, maxErr, err := approx.VerifyError(g, res.Labeling)
	if err != nil {
		return err
	}
	slackL, err := approx.SlackPLL(g, approx.Options{Slack: 2})
	if err != nil {
		return err
	}
	sHist, sMax, err := approx.VerifyError(g, slackL)
	if err != nil {
		return err
	}
	fmt.Printf("  exact PLL avg |S(v)|          : %.1f\n", exact.ComputeStats().Avg)
	fmt.Printf("  collapse (+2 guaranteed) avg  : %.1f  max-err=%d hist=%v  |R|=%d\n",
		res.ApproxAvg, maxErr, hist, len(res.Dominators))
	fmt.Printf("  slack-PLL (heuristic) avg     : %.1f  max-err=%d hist=%v\n",
		slackL.ComputeStats().Avg, sMax, sHist)
	fmt.Printf("  correction table (paper §1.1) : %.1f bits/vertex on top of approx labels -> exact\n",
		approx.CorrectionBits(g.NumNodes(), 2))
	return nil
}

func e16() error {
	road, err := gen.RoadLike(14, 14, 4, 3)
	if err != nil {
		return err
	}
	random, err := gen.RandomRegular(196, 3, 3)
	if err != nil {
		return err
	}
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{{"road-like 14x14", road}, {"random 3-regular", random}} {
		scales, err := hdim.Estimate(tc.g)
		if err != nil {
			return err
		}
		fmt.Printf("  %s (n=%d):\n", tc.name, tc.g.NumNodes())
		fmt.Println("    r   paths   greedy-cover  max-ball-cover")
		for _, s := range scales {
			fmt.Printf("  %4d  %6d   %12d  %14d\n", s.R, s.Paths, s.GreedyCover, s.MaxBallCover)
		}
	}
	fmt.Println("  (small per-ball covers at large scales = low highway dimension;")
	fmt.Println("   the road-like network thins out, the random graph does not)")
	return nil
}

// servingCacheKey names the shared Gnm(10k, 18k) serving instance in the
// -cache directory; e17 saves under it and servingIndex loads by it.
const servingCacheKey = "gnm10000"

// servingInstance builds (or loads) the shared Gnm(10k, 18k) serving
// index — the E10b/E17 instance — once per process for E18.
var servingInstance struct {
	once   sync.Once
	idx    *index.HubLabels
	ready  time.Duration
	cached bool
	err    error
}

func servingIndex() (*index.HubLabels, time.Duration, bool, error) {
	servingInstance.once.Do(func() {
		g, err := gen.Gnm(10000, 18000, 17)
		if err != nil {
			servingInstance.err = err
			return
		}
		start := time.Now()
		idx, cached, err := cachedPLL(servingCacheKey, g)
		if err != nil {
			servingInstance.err = err
			return
		}
		servingInstance.idx = idx
		servingInstance.ready = time.Since(start)
		servingInstance.cached = cached
	})
	return servingInstance.idx, servingInstance.ready, servingInstance.cached, servingInstance.err
}

func e17() error {
	g, err := gen.Gnm(10000, 18000, 17)
	if err != nil {
		return err
	}
	start := time.Now()
	labels, err := pll.Build(g, pll.Options{})
	if err != nil {
		return err
	}
	build := time.Since(start)
	idx := index.NewHubLabelsFrom(labels)
	// Seed the shared cache so later -cache runs start from this
	// container instead of paying the build again.
	if err := saveCache(servingCacheKey, idx); err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "hublab-e17-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	fmt.Printf("  instance: Gnm(10000, 18000), avg|S(v)|=%.1f; PLL rebuild = %v\n",
		idx.Flat().ComputeStats().Avg, build.Round(time.Millisecond))
	fmt.Println("  payload   bytes      write      load     rebuild/load")
	var rawLoaded *index.HubLabels
	var rawLoad time.Duration
	for _, tc := range []struct {
		name     string
		compress bool
	}{{"raw", false}, {"gamma", true}} {
		path := filepath.Join(dir, tc.name+".hli")
		ws := time.Now()
		if err := index.Save(path, idx, hub.ContainerOptions{Compress: tc.compress}); err != nil {
			return err
		}
		write := time.Since(ws)
		info, err := os.Stat(path)
		if err != nil {
			return err
		}
		ls := time.Now()
		loaded, err := index.Load(path)
		if err != nil {
			return err
		}
		load := time.Since(ls)
		if loaded.Meta().Vertices != 10000 {
			return fmt.Errorf("e17: loaded %d vertices", loaded.Meta().Vertices)
		}
		if !tc.compress {
			rawLoaded, rawLoad = loaded, load
		}
		fmt.Printf("  %-6s %9d  %9v %9v  %10.1fx\n",
			tc.name, info.Size(), write.Round(time.Microsecond), load.Round(time.Microsecond),
			float64(build)/float64(load))
	}
	// E18 serves this same instance: seed the in-process singleton so a
	// `-run all` pass without -cache does not pay a second identical PLL
	// construction. The reported ready time is the container-load time,
	// which is exactly what a serving process would observe.
	servingInstance.once.Do(func() {
		servingInstance.idx = rawLoaded
		servingInstance.ready = rawLoad
		servingInstance.cached = true
	})
	fmt.Println("  (the stored query structure is the product; serving never re-runs construction)")
	return nil
}

func e18() error {
	idx, ready, cached, err := servingIndex()
	if err != nil {
		return err
	}
	if cached {
		fmt.Printf("  index loaded from cache in %v\n", ready.Round(time.Millisecond))
	} else {
		fmt.Printf("  index built in %v (use -cache to load it next run)\n", ready.Round(time.Millisecond))
	}
	rng := rand.New(rand.NewSource(5))
	const queries = 40000
	pairs := make([][2]graph.NodeID, queries)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{graph.NodeID(rng.Intn(10000)), graph.NodeID(rng.Intn(10000))}
	}
	fmt.Println("  workers  clients      wall      queries/sec   coalesce")
	for _, workers := range []int{1, 2, 4, 8} {
		srv := server.New(idx, server.Options{Shards: workers})
		clients := 2 * workers
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := c; i < queries; i += clients {
					p := pairs[i]
					srv.Query(p[0], p[1])
				}
			}(c)
		}
		wg.Wait()
		wall := time.Since(start)
		st := srv.Stats()
		srv.Close()
		fmt.Printf("  %7d  %7d  %9v  %13.0f  %7.2f\n",
			workers, clients, wall.Round(time.Millisecond),
			float64(st.Served)/wall.Seconds(), float64(st.Served)/float64(st.Batches))
	}
	fmt.Println("  (throughput scales with shard workers; coalesce ≈ requests per merge group)")
	return nil
}

// --- E19: fair admission control under overload --------------------------

// e19Index is the capacity-controlled synthetic backend: every query
// costs a fixed service time, so capacity = shards / serviceTime and
// overload is cheap to generate. indextest.Fixed implements no batch
// path, so coalescing cannot hide the per-request cost.
func e19Index(delay time.Duration) index.Index {
	return &indextest.Fixed{N: 2, Delay: delay}
}

// e19Client is one load generator: workers goroutines sharing one client
// identity, pacing TryQuery calls at interval each.
type e19Client struct {
	id       string
	interval time.Duration
	workers  int
	attempts atomic.Uint64
	served   atomic.Uint64
}

// offer runs one pacing worker until stop closes. phase delays the
// worker's first request so a multi-worker client spreads its load
// evenly instead of firing synchronized bursts every interval.
func (c *e19Client) offer(srv *server.Server, stop <-chan struct{}, phase time.Duration) {
	select {
	case <-stop:
		return
	case <-time.After(phase):
	}
	next := time.Now()
	for {
		select {
		case <-stop:
			return
		default:
		}
		c.attempts.Add(1)
		if _, err := srv.TryQuery(c.id, 0, 1); err == nil {
			c.served.Add(1)
		}
		next = next.Add(c.interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		} else {
			next = time.Now() // overloaded pacer: don't accumulate debt
		}
	}
}

// jain computes Jain's fairness index (Σx)²/(n·Σx²) over the values.
func jain(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// maxminShares water-fills capacity over the measured demands: every
// client is entitled to its full demand unless that exceeds an equal
// share of what is left, so small flows are satisfied first and the
// remainder goes to the big ones. Jain's index over served/share then
// scores max-min fairness: proportional starvation (everyone gets the
// same fraction while a flood hogs the queue) correctly scores low.
func maxminShares(demand []float64, capacity float64) []float64 {
	type flow struct {
		i int
		d float64
	}
	order := make([]flow, len(demand))
	for i, d := range demand {
		order[i] = flow{i, d}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].d < order[b].d })
	share := make([]float64, len(demand))
	remaining := capacity
	for k, f := range order {
		level := remaining / float64(len(order)-k)
		s := f.d
		if s > level {
			s = level
		}
		share[f.i] = s
		remaining -= s
	}
	return share
}

// e19 measures goodput and per-client fairness under overload, with and
// without the flowctl admission controller. Workload: 10 polite clients
// jointly offering half of capacity, plus one unresponsive heavy client
// offering the rest of 1×/2×/4× total offered load. Satisfaction is
// served/offered per client; Jain's index is computed over the
// satisfaction vector.
func e19() error {
	const (
		svc    = 1 * time.Millisecond
		shards = 2
		// Deep enough that "queue rarely full" (what the controller
		// steers toward) does not mean "queue often empty" (lost
		// goodput): full and busy are decoupled by the buffer.
		queue  = 32
		nLight = 10
		// The heavy client's concurrent connections must exceed the
		// shards×queue slots it can occupy (or a closed-loop flood
		// self-limits below queue-full and no overload ever registers),
		// and by enough that each worker's pacing interval stays above
		// the worst-case queue wait — otherwise admitted calls blocking
		// for a full drain eat into the offered rate.
		heavyW = 250
		warmup = 400 * time.Millisecond
		// Long enough to average out the BLUE feedback oscillation and
		// scheduler noise on a loaded box.
		measured = 1500 * time.Millisecond
	)
	// Calibrate capacity: saturate the same server shape with blocking
	// clients (sleep-based service time overshoots on a busy box, so the
	// nominal shards/svc figure would be optimistic).
	srv := server.New(e19Index(svc), server.Options{Shards: shards, QueueDepth: queue})
	var calWG sync.WaitGroup
	calStop := make(chan struct{})
	for i := 0; i < 2*shards; i++ {
		calWG.Add(1)
		go func() {
			defer calWG.Done()
			for {
				select {
				case <-calStop:
					return
				default:
					srv.Query(0, 1)
				}
			}
		}()
	}
	calDur := 400 * time.Millisecond
	time.Sleep(calDur)
	capacity := float64(srv.Stats().Served) / calDur.Seconds()
	close(calStop)
	calWG.Wait()
	srv.Close()
	fmt.Printf("  synthetic backend: %v/query × %d shards -> measured capacity %.0f q/s\n",
		svc, shards, capacity)

	fmt.Println("  admission  offered/C  goodput/C  light-sat  heavy-sat   jain   hot  shed%")
	for _, fair := range []bool{false, true} {
		for _, mult := range []float64{1, 2, 4} {
			opts := server.Options{Shards: shards, QueueDepth: queue}
			if fair {
				opts.Admission = &flowctl.Options{}
			}
			srv := server.New(e19Index(svc), opts)
			clients := make([]*e19Client, 0, nLight+1)
			for i := 0; i < nLight; i++ {
				clients = append(clients, &e19Client{
					id:       fmt.Sprintf("light-%d", i),
					interval: time.Duration(float64(2*nLight) / capacity * float64(time.Second)),
					workers:  1,
				})
			}
			heavyRate := (mult - 0.5) * capacity
			clients = append(clients, &e19Client{
				id:       "heavy",
				interval: time.Duration(float64(heavyW) / heavyRate * float64(time.Second)),
				workers:  heavyW,
			})
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for _, c := range clients {
				for w := 0; w < c.workers; w++ {
					wg.Add(1)
					go func(c *e19Client, w int) {
						defer wg.Done()
						c.offer(srv, stop, c.interval*time.Duration(w)/time.Duration(c.workers))
					}(c, w)
				}
			}
			// Warm up past the controller's transient, then measure a
			// steady-state window by snapshotting the counters around it.
			time.Sleep(warmup)
			att0 := make([]uint64, len(clients))
			srv0 := make([]uint64, len(clients))
			for i, c := range clients {
				att0[i] = c.attempts.Load()
				srv0[i] = c.served.Load()
			}
			shed0 := srv.Stats().Shed
			time.Sleep(measured)
			sat := make([]float64, len(clients))
			demand := make([]float64, len(clients))
			got := make([]float64, len(clients))
			var offered, served float64
			for i, c := range clients {
				a := float64(c.attempts.Load() - att0[i])
				s := float64(c.served.Load() - srv0[i])
				offered += a
				served += s
				demand[i] = a / measured.Seconds()
				got[i] = s / measured.Seconds()
				if a > 0 {
					sat[i] = s / a
				}
			}
			// Fairness: served rate relative to the max-min fair share of
			// capacity given the measured demands.
			shares := maxminShares(demand, capacity)
			norm := make([]float64, len(clients))
			for i := range norm {
				if shares[i] > 0 {
					norm[i] = got[i] / shares[i]
				}
			}
			st := srv.Stats()
			close(stop)
			wg.Wait()
			srv.Close()
			lightSat := 0.0
			for _, x := range sat[:nLight] {
				lightSat += x
			}
			lightSat /= nLight
			shedPct := 0.0
			if offered > 0 {
				shedPct = 100 * float64(st.Shed-shed0) / offered
			}
			mode := "none"
			if fair {
				mode = "fair"
			}
			sec := measured.Seconds()
			fmt.Printf("  %-9s  %8.2fx  %8.2fx  %9.2f  %9.2f  %5.3f  %4d  %5.1f\n",
				mode, offered/sec/capacity, served/sec/capacity,
				lightSat, sat[nLight], jain(norm), st.PerClientHot, shedPct)
		}
	}
	fmt.Println("  (fair: goodput stays ≈capacity and polite clients stay satisfied at 4×;")
	fmt.Println("   none: first-come queue slots go to the flood and polite clients starve)")
	return nil
}

// e20: the cost of the richer query surface — witness-path unpacking
// bucketed by path length, and eccentricity queries against the inverted
// hub index, across instances of increasing average label size.
func e20() error {
	idx, ready, cached, err := servingIndex()
	if err != nil {
		return err
	}
	f := idx.Flat()
	if !f.HasParents() {
		// A stale version-1 cache container carries no parent column;
		// rebuild the serving labeling so the experiment measures the
		// real thing.
		g, err := gen.Gnm(10000, 18000, 17)
		if err != nil {
			return err
		}
		labels, err := pll.Build(g, pll.Options{})
		if err != nil {
			return err
		}
		f = labels.Freeze()
		fmt.Println("  (cached container had no parent column; rebuilt with parents)")
	}
	fmt.Printf("  instance: Gnm(10000, 18000), avg|S(v)|=%.1f (ready in %v, cached=%v)\n",
		f.ComputeStats().Avg, ready.Round(time.Millisecond), cached)

	// Path unpacking vs path length: sample pairs, bucket by hop count.
	rng := rand.New(rand.NewSource(99))
	type bucket struct {
		lo, hi int
		pairs  [][2]graph.NodeID
		verts  int
	}
	buckets := []*bucket{{1, 2, nil, 0}, {3, 4, nil, 0}, {5, 6, nil, 0}, {7, 9, nil, 0}, {10, 1 << 30, nil, 0}}
	var buf []graph.NodeID
	for k := 0; k < 60000; k++ {
		u := graph.NodeID(rng.Intn(10000))
		v := graph.NodeID(rng.Intn(10000))
		buf, err = f.AppendPath(buf[:0], u, v)
		if err != nil {
			return err
		}
		hops := len(buf) - 1
		for _, b := range buckets {
			if hops >= b.lo && hops <= b.hi && len(b.pairs) < 2000 {
				b.pairs = append(b.pairs, [2]graph.NodeID{u, v})
				b.verts += len(buf)
			}
		}
	}
	fmt.Println("  path length   pairs   ns/path    ns/vertex")
	for _, b := range buckets {
		if len(b.pairs) < 50 {
			continue
		}
		const rounds = 30
		start := time.Now()
		for r := 0; r < rounds; r++ {
			for _, p := range b.pairs {
				buf, err = f.AppendPath(buf[:0], p[0], p[1])
				if err != nil {
					return err
				}
			}
		}
		el := time.Since(start)
		perPath := float64(el.Nanoseconds()) / float64(rounds*len(b.pairs))
		perVert := float64(el.Nanoseconds()) / float64(rounds*b.verts)
		label := fmt.Sprintf("%d–%d", b.lo, b.hi)
		if b.hi > 100 {
			label = fmt.Sprintf("%d+", b.lo)
		}
		fmt.Printf("  %-11s %7d  %8.0f   %9.0f\n", label, len(b.pairs), perPath, perVert)
	}

	// Eccentricity queries vs average label size, across three instances.
	fmt.Println("  eccentricity: instance             n  avg|S(v)|  ecc-index build   ns/ecc-query")
	instances := []struct {
		name string
		g    func() (*graph.Graph, error)
	}{
		{"RoadLike(32x32)", func() (*graph.Graph, error) { return gen.RoadLike(32, 32, 8, 3) }},
		{"RandomTree(4095)", func() (*graph.Graph, error) { return gen.RandomTree(4095, 3) }},
		{"Gnm(10k,18k)", nil}, // reuses the serving labeling above
	}
	for _, inst := range instances {
		lf := f
		if inst.g != nil {
			g, err := inst.g()
			if err != nil {
				return err
			}
			labels, err := pll.Build(g, pll.Options{})
			if err != nil {
				return err
			}
			lf = labels.Freeze()
		}
		bs := time.Now()
		eccIdx := hub.NewEccIndex(lf)
		build := time.Since(bs)
		n := lf.NumVertices()
		// The expander instance is the worst case (budgeted scan fallback,
		// ~ms per query); sample it more lightly than the structured ones.
		queries := 3000
		if n >= 10000 {
			queries = 200
		}
		qs := time.Now()
		for k := 0; k < queries; k++ {
			eccIdx.Eccentricity(graph.NodeID(rng.Intn(n)))
		}
		perQ := float64(time.Since(qs).Nanoseconds()) / float64(queries)
		fmt.Printf("  %-28s %7d  %8.1f  %14v  %12.0f\n",
			inst.name, n, lf.ComputeStats().Avg, build.Round(time.Microsecond), perQ)
	}
	fmt.Println("  (paths unpack at a few merge-queries' cost per vertex; ecc refinement is")
	fmt.Println("   cheapest where hub bounds are tight and falls back to one budgeted batched")
	fmt.Println("   label scan on expander-like instances — the paper's hard regime)")
	return nil
}

// e21: the zero-copy serving path. Three measurements on the shared
// Gnm(10k) instance written as an aligned (v3) container: (1) open
// latency, decode vs mmap, with a byte-identical answer check; (2) the
// first-touch cost an mmap process pays lazily — page faults and time of
// the first query sweep vs the steady state; (3) resident memory of 1
// vs 3 concurrent serving processes over the same container, decode vs
// mmap (child processes of this binary in -hold mode report their
// RSS/PSS) — the page-cache sharing that makes multi-process mmap
// serving pay for the index once.
func e21() error {
	idx, _, _, err := servingIndex()
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "hublab-e21-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "aligned.hli")
	if err := index.Save(path, idx, hub.ContainerOptions{Aligned: true}); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("  instance: Gnm(10000, 18000), aligned container %d bytes\n", info.Size())

	// (1) Open latency: best of reps, page cache warm in both cases.
	const reps = 9
	var decodeOpen, mmapOpen time.Duration = time.Hour, time.Hour
	var decoded *index.HubLabels
	for i := 0; i < reps; i++ {
		s := time.Now()
		x, err := index.Load(path)
		if err != nil {
			return err
		}
		if d := time.Since(s); d < decodeOpen {
			decodeOpen = d
		}
		decoded = x
	}
	for i := 0; i < reps; i++ {
		s := time.Now()
		x, err := index.LoadMmap(path)
		if err != nil {
			return err
		}
		if d := time.Since(s); d < mmapOpen {
			mmapOpen = d
		}
		x.Release()
	}
	fmt.Printf("  open: decode %v, mmap %v — %.0fx faster (O(1) in index size)\n",
		decodeOpen.Round(time.Microsecond), mmapOpen.Round(time.Microsecond),
		float64(decodeOpen)/float64(mmapOpen))

	// Byte-identical answers across the two doors.
	view, err := index.LoadMmap(path)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(21))
	for k := 0; k < 5000; k++ {
		u := graph.NodeID(rng.Intn(10000))
		v := graph.NodeID(rng.Intn(10000))
		if a, b := decoded.Distance(u, v), view.Distance(u, v); a != b {
			view.Release()
			return fmt.Errorf("e21: decode and mmap disagree on (%d,%d): %d vs %d", u, v, a, b)
		}
	}
	fmt.Println("  answers: 5000 sampled queries byte-identical across decode and mmap")
	view.Release()

	// (2) First-touch cost: a fresh mapping faults its pages in on the
	// queries that touch them; the sweep price amortizes away.
	fresh, err := index.LoadMmap(path)
	if err != nil {
		return err
	}
	pairs := make([][2]graph.NodeID, 20000)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{graph.NodeID(rng.Intn(10000)), graph.NodeID(rng.Intn(10000))}
	}
	f0 := minorFaults()
	s := time.Now()
	for _, p := range pairs {
		fresh.Distance(p[0], p[1])
	}
	cold := time.Since(s)
	coldFaults := minorFaults() - f0
	f0 = minorFaults()
	s = time.Now()
	for _, p := range pairs {
		fresh.Distance(p[0], p[1])
	}
	warm := time.Since(s)
	warmFaults := minorFaults() - f0
	fmt.Printf("  first-touch: first %d queries %v (%d soft faults), steady %v (%d) — %.0fns → %.0fns/query\n",
		len(pairs), cold.Round(time.Microsecond), coldFaults, warm.Round(time.Microsecond), warmFaults,
		float64(cold.Nanoseconds())/float64(len(pairs)), float64(warm.Nanoseconds())/float64(len(pairs)))
	fresh.Release()

	// (3) Shared memory across processes.
	fmt.Println("  procs  mode    sum RSS (MB)  sum PSS (MB)")
	for _, mode := range []string{"decode", "mmap"} {
		for _, procs := range []int{1, 3} {
			rss, pss, err := holdChildren(mode, path, procs)
			if err != nil {
				fmt.Printf("  (%d×%s skipped: %v)\n", procs, mode, err)
				continue
			}
			fmt.Printf("  %5d  %-6s  %12.1f  %12.1f\n",
				procs, mode, float64(rss)/1024, float64(pss)/1024)
		}
	}
	fmt.Println("  (PSS divides shared pages among sharers: 3 mmap processes cost ~1 index,")
	fmt.Println("   3 decode processes cost 3 — the kernel page cache is the only copy)")
	return nil
}

// minorFaults reads this process's cumulative soft page faults
// (/proc/self/stat field minflt); 0 when unavailable.
func minorFaults() int64 {
	data, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return 0
	}
	// comm may contain spaces: fields restart after the closing paren.
	i := strings.LastIndexByte(string(data), ')')
	if i < 0 {
		return 0
	}
	fields := strings.Fields(string(data[i+1:]))
	if len(fields) < 8 {
		return 0
	}
	n, _ := strconv.ParseInt(fields[7], 10, 64)
	return n
}

// selfMem reads this process's resident and proportional set sizes in
// kB. PSS (shared pages divided among sharers) needs smaps_rollup; when
// only VmRSS is available, PSS is reported equal to RSS.
func selfMem() (rssKB, pssKB int64, err error) {
	parse := func(path, key string) (int64, bool) {
		data, err := os.ReadFile(path)
		if err != nil {
			return 0, false
		}
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, key) {
				f := strings.Fields(line)
				if len(f) >= 2 {
					n, err := strconv.ParseInt(f[1], 10, 64)
					return n, err == nil
				}
			}
		}
		return 0, false
	}
	rss, ok := parse("/proc/self/status", "VmRSS:")
	if !ok {
		return 0, 0, fmt.Errorf("no /proc/self/status VmRSS")
	}
	if pss, ok := parse("/proc/self/smaps_rollup", "Pss:"); ok {
		return rss, pss, nil
	}
	return rss, rss, nil
}

// runHold is the E21 child: load the container, touch every label page
// with a query sweep, report memory, and hold the index until the parent
// closes stdin.
func runHold(mode, path string) error {
	var idx *index.HubLabels
	var err error
	switch mode {
	case "mmap":
		idx, err = index.LoadMmap(path)
	case "decode":
		idx, err = index.Load(path)
	default:
		return fmt.Errorf("unknown -hold mode %q", mode)
	}
	if err != nil {
		return err
	}
	defer idx.Release()
	n := idx.Meta().Vertices
	for v := 0; v < n; v++ {
		idx.Distance(graph.NodeID(v), graph.NodeID((v+7)%n))
	}
	rss, pss, err := selfMem()
	if err != nil {
		return err
	}
	fmt.Printf("HOLD rss_kb=%d pss_kb=%d\n", rss, pss)
	io.Copy(io.Discard, os.Stdin)
	return nil
}

// holdChildren spawns procs children of this binary in -hold mode over
// the same container, collects their memory reports while all are alive
// simultaneously (so PSS reflects real sharing), then releases them.
func holdChildren(mode, path string, procs int) (sumRSSKB, sumPSSKB int64, err error) {
	exe, err := os.Executable()
	if err != nil {
		return 0, 0, err
	}
	type child struct {
		cmd   *exec.Cmd
		stdin io.WriteCloser
		out   *bufio.Reader
	}
	children := make([]child, 0, procs)
	defer func() {
		for _, c := range children {
			c.stdin.Close()
			c.cmd.Wait()
		}
	}()
	for i := 0; i < procs; i++ {
		cmd := exec.Command(exe, "-hold", mode, "-holdindex", path)
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return 0, 0, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return 0, 0, err
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return 0, 0, err
		}
		children = append(children, child{cmd: cmd, stdin: stdin, out: bufio.NewReader(stdout)})
	}
	// Every child holds its index mapped until we close stdin below, so
	// the reports are taken while all mappings coexist.
	for i := range children {
		line, err := children[i].out.ReadString('\n')
		if err != nil {
			return 0, 0, fmt.Errorf("child %d: %v", i, err)
		}
		var rss, pss int64
		if _, err := fmt.Sscanf(strings.TrimSpace(line), "HOLD rss_kb=%d pss_kb=%d", &rss, &pss); err != nil {
			return 0, 0, fmt.Errorf("child %d report %q: %v", i, line, err)
		}
		sumRSSKB += rss
		sumPSSKB += pss
	}
	return sumRSSKB, sumPSSKB, nil
}

// e22: the chaos storm. One live server (the shared Gnm(10k) serving
// index behind the sharded service) is attacked on two axes at once
// while client goroutines hammer it:
//
//   - worker panics and latency jitter via internal/faultinject, at a
//     deterministic schedule dense enough for hundreds of contained
//     panics in one run;
//   - a reload storm that alternates valid container swaps with corrupt
//     (torn) containers renamed over the serving path — the corrupt ones
//     must be detected, quarantined, and survived.
//
// The experiment asserts, not just reports: zero escaped panics, every
// request resolved, server accounting exactly equal to the submitted
// count, ≥100 injected panics, ≥10 corrupt reloads quarantined, and the
// post-storm server answering a pre-storm sample byte-identically.
func e22() error {
	idx, _, _, err := servingIndex()
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "hublab-e22-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "serving.hli")
	if err := index.Save(path, idx, hub.ContainerOptions{Aligned: true}); err != nil {
		return err
	}
	good, err := os.ReadFile(path)
	if err != nil {
		return err
	}

	// Pre-storm truth: a fixed sample of exact answers.
	rng := rand.New(rand.NewSource(22))
	const nSample = 2000
	sample := make([][2]graph.NodeID, nSample)
	truth := make([]graph.Weight, nSample)
	for i := range sample {
		sample[i] = [2]graph.NodeID{graph.NodeID(rng.Intn(10000)), graph.NodeID(rng.Intn(10000))}
		truth[i] = idx.Distance(sample[i][0], sample[i][1])
	}

	view, err := index.LoadMmap(path)
	if err != nil {
		return err
	}
	srv := server.New(view, server.Options{
		Shards:       4,
		QueueDepth:   32,
		OwnIndex:     true,
		QueryTimeout: 250 * time.Millisecond,
	})
	defer srv.Close()

	// panic:every=24 over ~(clients*perClient)/batchSize group serves
	// guarantees hundreds of contained panics; the delay trigger adds
	// latency jitter so groups and swaps interleave differently each
	// wall-clock run while the panic schedule stays deterministic.
	const spec = "server.worker:panic:every=24;server.worker:delay:p=0.02,d=500us"
	if err := faultinject.Enable(spec, 22); err != nil {
		return err
	}
	defer faultinject.Disable()

	const clients = 8
	const perClient = 2500
	var served, faulted, overloaded, timeouts, escaped, unexpected atomic.Uint64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					escaped.Add(1)
				}
			}()
			prng := rand.New(rand.NewSource(int64(1000 + c)))
			for i := 0; i < perClient; i++ {
				u := graph.NodeID(prng.Intn(10000))
				v := graph.NodeID(prng.Intn(10000))
				_, err := srv.TryQuery(fmt.Sprintf("chaos-%d", c), u, v)
				switch {
				case err == nil:
					served.Add(1)
				case errors.Is(err, server.ErrBackendFault):
					faulted.Add(1)
				case errors.Is(err, server.ErrOverloaded):
					overloaded.Add(1)
				case errors.Is(err, server.ErrTimeout):
					timeouts.Add(1)
				default:
					unexpected.Add(1)
				}
			}
		}(c)
	}

	// The reload storm, concurrent with the query storm: odd rounds tear
	// the container (rename — never in-place, the live mmap holds the old
	// inode) and must quarantine; even rounds swap a fresh valid view in.
	var goodSwaps, corruptReloads int
	reloadErr := func() error {
		for round := 0; round < 30; round++ {
			if round%2 == 1 {
				torn := good[:len(good)/2]
				tmp := path + ".next"
				if err := os.WriteFile(tmp, torn, 0o644); err != nil {
					return err
				}
				if err := os.Rename(tmp, path); err != nil {
					return err
				}
				_, lerr := index.LoadMmap(path)
				if lerr == nil {
					return fmt.Errorf("e22: torn container loaded successfully")
				}
				if !index.IsCorrupt(lerr) {
					return fmt.Errorf("e22: torn container error not classified corrupt: %w", lerr)
				}
				if _, qerr := index.Quarantine(path); qerr != nil {
					return qerr
				}
				corruptReloads++
				// Put the good container back, the way hubgen would: write
				// aside, atomic rename.
				if err := os.WriteFile(tmp, good, 0o644); err != nil {
					return err
				}
				if err := os.Rename(tmp, path); err != nil {
					return err
				}
			} else {
				next, lerr := index.LoadMmap(path)
				if lerr != nil {
					return fmt.Errorf("e22: valid reload round %d: %w", round, lerr)
				}
				srv.SwapRetire(next)
				goodSwaps++
			}
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	}()
	wg.Wait()
	elapsed := time.Since(start)
	faultinject.Disable()
	if reloadErr != nil {
		return reloadErr
	}

	st := srv.Stats()
	// The server counts each contained worker panic exactly once; the
	// registry's Fired() can't be used here (it sums the delay trigger at
	// the same point, and Disable above already cleared it).
	panics := st.Panics
	submitted := uint64(clients * perClient)
	resolved := served.Load() + faulted.Load() + overloaded.Load() + timeouts.Load()

	fmt.Printf("  storm: %d clients x %d queries in %v (%.0f req/s goodput on served)\n",
		clients, perClient, elapsed.Round(time.Millisecond),
		float64(served.Load())/elapsed.Seconds())
	fmt.Printf("  outcomes: served %d, faulted %d, overloaded %d, timeouts %d (resolved %d/%d)\n",
		served.Load(), faulted.Load(), overloaded.Load(), timeouts.Load(), resolved, submitted)
	fmt.Printf("  faults: %d worker panics contained (%d requests faulted, %d timed out), health now %q\n",
		panics, st.Faulted, st.Timeouts, st.Health)
	fmt.Printf("  reloads: %d valid swaps, %d corrupt containers quarantined\n", goodSwaps, corruptReloads)

	// The assertions that make this an experiment worth running in CI.
	if escaped.Load() != 0 {
		return fmt.Errorf("e22: %d panics escaped to client goroutines", escaped.Load())
	}
	if unexpected.Load() != 0 {
		return fmt.Errorf("e22: %d requests resolved with unexpected errors", unexpected.Load())
	}
	if resolved != submitted {
		return fmt.Errorf("e22: resolved %d of %d submitted requests", resolved, submitted)
	}
	if got := st.Served + st.Rejected + st.Shed + st.Faulted + st.Timeouts; got != submitted {
		return fmt.Errorf("e22: server accounting %d != %d submitted (served=%d rejected=%d shed=%d faulted=%d timeouts=%d)",
			got, submitted, st.Served, st.Rejected, st.Shed, st.Faulted, st.Timeouts)
	}
	if panics < 100 {
		return fmt.Errorf("e22: only %d injected panics, want >= 100", panics)
	}
	if corruptReloads < 10 {
		return fmt.Errorf("e22: only %d corrupt reloads, want >= 10", corruptReloads)
	}
	for i, p := range sample {
		if d := srv.Query(p[0], p[1]); d != truth[i] {
			return fmt.Errorf("e22: post-storm answer (%d,%d) = %d, want %d", p[0], p[1], d, truth[i])
		}
	}
	fmt.Printf("  answers: %d-pair pre-storm sample byte-identical after the storm\n", nSample)
	fmt.Println("  (the service degrades to typed errors under injected faults and corrupt")
	fmt.Println("   containers, never to a crash or a wrong answer)")
	return nil
}

// e23 measures the million-vertex build pipeline (PR 7): parallel PLL
// throughput and speedup against the sequential reference, the
// byte-equality invariant that makes the parallel engine a drop-in, and
// the peak-memory difference between streaming container emission and
// the freeze-then-write path.
//
// The speedup table is honest about the machine it ran on (worker count
// beyond physical cores buys nothing); byte-equality, however, must
// hold everywhere, and the experiment fails — not just reports — when a
// parallel container differs from the sequential one.
func e23() error {
	fmt.Printf("machine: %d CPU core(s) visible to the runtime\n\n", runtime.NumCPU())

	weightedGnm := func(n, m int, seed int64) (*graph.Graph, error) {
		ga, err := gen.Gnm(n, m, seed)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + 1))
		b := graph.NewBuilder(ga.NumNodes(), ga.NumEdges())
		for _, e := range ga.Edges() {
			b.AddWeightedEdge(e.U, e.V, 1+graph.Weight(rng.Intn(9)))
		}
		return b.Build()
	}
	graphs := []struct {
		name string
		g    *graph.Graph
		err  error
	}{}
	if g, err := weightedGnm(10000, 18000, 23); true {
		graphs = append(graphs, struct {
			name string
			g    *graph.Graph
			err  error
		}{"gnm10k-w", g, err})
	}
	if g, err := gen.RoadLike(100, 100, 8, 23); true {
		graphs = append(graphs, struct {
			name string
			g    *graph.Graph
			err  error
		}{"road100x100", g, err})
	}

	containerOf := func(l *hub.Labeling) ([]byte, error) {
		var buf bytes.Buffer
		if _, err := l.Freeze().WriteContainer(&buf, hub.ContainerOptions{}); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}

	fmt.Println("graph        workers   build-s   labels/sec   speedup   container")
	for _, tc := range graphs {
		if tc.err != nil {
			return tc.err
		}
		var (
			seqSecs  float64
			seqBytes []byte
		)
		for _, workers := range []int{1, 2, 4, 8} {
			start := time.Now()
			l, err := pll.Build(tc.g, pll.Options{Workers: workers})
			if err != nil {
				return err
			}
			secs := time.Since(start).Seconds()
			stats := l.ComputeStats()
			c, err := containerOf(l)
			if err != nil {
				return err
			}
			status := "=="
			if workers == 1 {
				seqSecs, seqBytes = secs, c
				status = "(reference)"
			} else if !bytes.Equal(c, seqBytes) {
				return fmt.Errorf("E23: %s workers=%d container differs from sequential", tc.name, workers)
			}
			fmt.Printf("%-12s %7d %9.2f %12.0f %8.2fx   %s\n",
				tc.name, workers, secs, float64(stats.Total)/secs, seqSecs/secs, status)
		}
	}

	// Peak-heap table: the same build saved through the streaming writer
	// (no flat copy ever exists) vs frozen first. The sampler polls the
	// live-heap gauge; what matters is the delta over the baseline —
	// ~0.3× of a labeling copy for streaming (the container's transient
	// column buffers) vs ~1× for freeze (flat arrays duplicate the
	// slice-of-slices form before a byte is written).
	fmt.Println()
	g, err := gen.BalancedBinaryTree(1 << 17)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "hublab-e23-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	sampleHeapDuring := func(fn func() error) (peakMB float64, err error) {
		runtime.GC()
		var peak uint64
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			var ms runtime.MemStats
			for {
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
				select {
				case <-stop:
					return
				case <-time.After(time.Millisecond):
				}
			}
		}()
		err = fn()
		close(stop)
		<-done
		return float64(peak) / (1 << 20), err
	}

	baseline := func(l *hub.Labeling) float64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		_ = l // keep the labeling reachable across the GC above
		return float64(ms.HeapAlloc) / (1 << 20)
	}

	fmt.Println("save path    n        labels     baseline-MB   peak-MB   overhead")
	for _, mode := range []string{"streaming", "freeze"} {
		l, err := pll.BuildUnfrozen(g, pll.Options{})
		if err != nil {
			return err
		}
		stats := l.ComputeStats()
		base := baseline(l)
		path := filepath.Join(dir, mode+".hli")
		peak, err := sampleHeapDuring(func() error {
			if mode == "streaming" {
				return index.SaveStreaming(path, l, hub.ContainerOptions{Aligned: true})
			}
			return index.Save(path, index.NewHubLabelsFrom(l), hub.ContainerOptions{Aligned: true})
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %-8d %-10d %11.1f %9.1f %8.2fx\n",
			mode, g.NumNodes(), stats.Total, base, peak, peak/base)
	}
	fmt.Println("\n(byte-equality of parallel vs sequential containers is also pinned")
	fmt.Println(" per-family by TestParallelBuildMatchesSequential under -race)")
	return nil
}

// e24: compressed queryable serving (PR 8). The same labeling is saved
// two ways — aligned v3 (expanded int32 columns) and compact v4
// (frequency-ranked hub remap, delta-narrowed byte distances) — and
// both are opened via mmap, compared on what a deployment pays:
// container bytes on disk, the resident bytes a distance-only workload
// touches (the arithmetic QueryBytes figure, corroborated by counting
// soft page faults over a full query sweep on a fresh mapping — parent
// pages are only ever faulted in by path queries), and merge-query
// latency. Answers must be byte-identical across representations for
// distances, unpacked paths, and eccentricities on every sampled pair.
//
// On the shared Gnm(10k) instance the experiment asserts the PR's
// acceptance bar rather than just reporting it: the compact form must
// hold ≥3× fewer distance-resident bytes at ≤1.5× merge latency.
func e24() error {
	type inst struct {
		name string
		idx  *index.HubLabels
		gate bool
	}
	var insts []inst
	shared, _, _, err := servingIndex()
	if err != nil {
		return err
	}
	insts = append(insts, inst{"gnm10k", shared, true})
	roadG, err := gen.RoadLike(100, 100, 8, 23)
	if err != nil {
		return err
	}
	roadL, err := pll.Build(roadG, pll.Options{})
	if err != nil {
		return err
	}
	insts = append(insts, inst{"road100x100", index.NewHubLabelsFrom(roadL), false})
	switch g, err := dataset.Load("rome99"); {
	case errors.Is(err, dataset.ErrNotFetched):
		fmt.Println("  (DIMACS rome99 skipped: not fetched — run scripts/fetch_dimacs.sh rome99)")
	case err != nil:
		return err
	default:
		l, err := pll.Build(g, pll.Options{})
		if err != nil {
			return err
		}
		insts = append(insts, inst{"rome99", index.NewHubLabelsFrom(l), false})
	}

	dir, err := os.MkdirTemp("", "hublab-e24-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	page := int64(os.Getpagesize())

	// sweepFaults opens a fresh mapping of path and counts the soft page
	// faults one full distance sweep provokes — the kernel's own account
	// of the resident working set, at page granularity.
	sweepFaults := func(path string) (int64, error) {
		x, err := index.LoadMmap(path)
		if err != nil {
			return 0, err
		}
		defer x.Release()
		n := x.Meta().Vertices
		f0 := minorFaults()
		for v := 0; v < n; v++ {
			x.Distance(graph.NodeID(v), graph.NodeID((v+7)%n))
		}
		return minorFaults() - f0, nil
	}

	fmt.Println("  instance      rep        container-B   query-resident-B   sweep-fault-MB   ns/query")
	for _, tc := range insts {
		n := tc.idx.Meta().Vertices
		rng := rand.New(rand.NewSource(24))
		pairs := make([][2]graph.NodeID, 20000)
		for i := range pairs {
			pairs[i] = [2]graph.NodeID{graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))}
		}
		doors := []struct {
			rep  string
			opts hub.ContainerOptions
		}{
			{hub.RepExpanded, hub.ContainerOptions{Aligned: true}},
			{hub.RepCompact, hub.ContainerOptions{Compact: true}},
		}
		var (
			views    [2]*index.HubLabels
			faults   [2]int64
			resident [2]float64
			latency  [2]float64
		)
		for d, door := range doors {
			path := filepath.Join(dir, tc.name+"-"+door.rep+".hli")
			if err := index.Save(path, tc.idx, door.opts); err != nil {
				return err
			}
			x, err := index.LoadMmap(path)
			if err != nil {
				return err
			}
			defer x.Release()
			if got := x.Meta().Representation; got != door.rep {
				return fmt.Errorf("e24: %s opened as %q, want %q", path, got, door.rep)
			}
			// Byte-identical answers vs the build-side index: distances,
			// unpacked paths, eccentricities.
			for k := 0; k < 4000; k++ {
				u, v := pairs[k][0], pairs[k][1]
				if a, b := tc.idx.Distance(u, v), x.Distance(u, v); a != b {
					return fmt.Errorf("e24: %s/%s distance(%d,%d)=%d, want %d", tc.name, door.rep, u, v, b, a)
				}
			}
			for k := 0; k < 300; k++ {
				u, v := pairs[k][0], pairs[k][1]
				want, werr := tc.idx.AppendPath(nil, u, v)
				got, gerr := x.AppendPath(nil, u, v)
				if (werr == nil) != (gerr == nil) || !slices.Equal(want, got) {
					return fmt.Errorf("e24: %s/%s path(%d,%d) diverges from build-side index", tc.name, door.rep, u, v)
				}
			}
			for v := 0; v < 8 && v < n; v++ {
				a, aerr := tc.idx.Eccentricity(graph.NodeID(v))
				b, berr := x.Eccentricity(graph.NodeID(v))
				if a != b || (aerr == nil) != (berr == nil) {
					return fmt.Errorf("e24: %s/%s ecc(%d)=%d, want %d", tc.name, door.rep, v, b, a)
				}
			}
			if faults[d], err = sweepFaults(path); err != nil {
				return err
			}
			views[d] = x
			resident[d] = float64(x.Store().QueryBytes())
			latency[d] = math.MaxFloat64
			// Warm the mapping so the timed rounds below measure the merge,
			// not first-touch faults.
			for _, p := range pairs {
				x.Distance(p[0], p[1])
			}
		}
		// Time the two doors interleaved — alternating rounds, minimum per
		// door — so a machine-load swing lands on both representations
		// instead of skewing whichever happened to run during it.
		for round := 0; round < 5; round++ {
			for d := range doors {
				x := views[d]
				s := time.Now()
				for _, p := range pairs {
					x.Distance(p[0], p[1])
				}
				if ns := float64(time.Since(s).Nanoseconds()) / float64(len(pairs)); ns < latency[d] {
					latency[d] = ns
				}
			}
		}
		for d, door := range doors {
			fmt.Printf("  %-12s  %-9s %12d  %17.0f  %15.2f  %9.0f\n",
				tc.name, door.rep, views[d].Meta().ContainerBytes, resident[d],
				float64(faults[d]*page)/(1<<20), latency[d])
		}
		rr := resident[0] / resident[1]
		lr := latency[1] / latency[0]
		fmt.Printf("  %-12s  compact: %.2fx smaller distance-resident set, %.2fx merge latency\n",
			tc.name, rr, lr)
		if tc.gate {
			if rr < 3 {
				return fmt.Errorf("e24: %s resident reduction %.2fx below the 3x acceptance bar", tc.name, rr)
			}
			if lr > 1.5 {
				return fmt.Errorf("e24: %s merge latency %.2fx above the 1.5x acceptance bar", tc.name, lr)
			}
		}
	}
	fmt.Println("  (query-resident-B = QueryBytes: the columns a distance merge reads; the")
	fmt.Println("   fault column is the kernel's page-granular count over a fresh mapping)")
	return nil
}

// --- E26: binary batch door vs HTTP door, fleet goodput under flood ----

// e26Door runs one closed-loop load generator per worker against a door
// until the deadline, sums the queries each finished, and returns the
// aggregate rate. The first worker error wins.
func e26Door(workers int, dur time.Duration, worker func(w int, deadline time.Time) (int64, error)) (float64, error) {
	var total atomic.Int64
	errc := make(chan error, workers)
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n, err := worker(w, deadline)
			total.Add(n)
			if err != nil {
				errc <- err
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		return 0, err
	}
	return float64(total.Load()) / dur.Seconds(), nil
}

// e26Doors is part A of E26: the same Gnm(10k) serving index behind the
// HTTP text door (one request-response per query, the hubserve -http
// shape) and the binary batch door (up to wire.MaxBatch queries per
// frame). The acceptance gate is the batching dividend: at batch 16 the
// binary door must clear 5x the HTTP door's throughput.
func e26Doors() error {
	idx, ready, cached, err := servingIndex()
	if err != nil {
		return err
	}
	how := "built"
	if cached {
		how = "cache"
	}
	fmt.Printf("  part A: door throughput on Gnm(10000,18000) PLL (%s in %v)\n", how, ready.Round(time.Millisecond))

	srv := server.New(idx, server.Options{Shards: runtime.GOMAXPROCS(0)})
	defer srv.Close()
	n := srv.Meta().Vertices

	door := netserve.New(srv, netserve.Options{})
	defer door.Close()
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() {
		if err := door.Serve(lnB); err != nil && !errors.Is(err, net.ErrClosed) {
			log.Printf("e26: binary door: %v", err)
		}
	}()

	// The HTTP door replicates hubserve's /distance handler shape: text
	// answer, one query per round trip, keep-alive connections.
	mux := http.NewServeMux()
	mux.HandleFunc("/distance", func(w http.ResponseWriter, r *http.Request) {
		u, erru := strconv.Atoi(r.URL.Query().Get("u"))
		v, errv := strconv.Atoi(r.URL.Query().Get("v"))
		if erru != nil || errv != nil || u < 0 || u >= n || v < 0 || v >= n {
			http.Error(w, "bad query", http.StatusBadRequest)
			return
		}
		d, err := srv.TryQuery("e26-http", graph.NodeID(u), graph.NodeID(v))
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(w, "%d\n", d)
	})
	lnH, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: mux}
	defer hs.Close()
	go func() {
		if err := hs.Serve(lnH); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("e26: http door: %v", err)
		}
	}()

	httpDoor := func(workers int, dur time.Duration) (float64, error) {
		tr := &http.Transport{MaxIdleConnsPerHost: workers, MaxIdleConns: 2 * workers}
		defer tr.CloseIdleConnections()
		cl := &http.Client{Transport: tr}
		base := "http://" + lnH.Addr().String() + "/distance"
		return e26Door(workers, dur, func(w int, deadline time.Time) (int64, error) {
			rng := rand.New(rand.NewSource(int64(2600 + w)))
			var nq int64
			for time.Now().Before(deadline) {
				resp, err := cl.Get(fmt.Sprintf("%s?u=%d&v=%d", base, rng.Intn(n), rng.Intn(n)))
				if err != nil {
					return nq, err
				}
				_, cerr := io.Copy(io.Discard, resp.Body)
				if err := resp.Body.Close(); cerr == nil {
					cerr = err
				}
				if cerr != nil {
					return nq, cerr
				}
				if resp.StatusCode != http.StatusOK {
					return nq, fmt.Errorf("http door: status %d", resp.StatusCode)
				}
				nq++
			}
			return nq, nil
		})
	}

	wireDoor := func(workers, batch int, dur time.Duration) (float64, error) {
		addr := lnB.Addr().String()
		return e26Door(workers, dur, func(w int, deadline time.Time) (int64, error) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return 0, err
			}
			defer conn.Close()
			bw := bufio.NewWriter(conn)
			br := bufio.NewReader(conn)
			rng := rand.New(rand.NewSource(int64(2700 + w)))
			qs := make([]wire.Query, batch)
			kinds := make([]uint8, batch)
			rs := make([]wire.Result, 0, batch)
			var frame, rbuf []byte
			var nq int64
			id := uint64(w) << 32
			for time.Now().Before(deadline) {
				for i := range qs {
					qs[i] = wire.Query{Kind: wire.QDist, U: graph.NodeID(rng.Intn(n)), V: graph.NodeID(rng.Intn(n))}
					kinds[i] = wire.QDist
				}
				id++
				frame, err = wire.AppendRequest(frame[:0], id, qs)
				if err != nil {
					return nq, err
				}
				if _, err := bw.Write(frame); err != nil {
					return nq, err
				}
				if err := bw.Flush(); err != nil {
					return nq, err
				}
				kind, payload, err := wire.ReadFrame(br, &rbuf, 0)
				if err != nil {
					return nq, err
				}
				if kind != wire.FrameReply {
					return nq, fmt.Errorf("binary door answered frame kind %d", kind)
				}
				gotID, out, err := wire.ParseReply(payload, kinds, rs[:0])
				if err != nil {
					return nq, err
				}
				if gotID != id || len(out) != batch {
					return nq, fmt.Errorf("binary door reply mismatch: id %d want %d, %d results", gotID, id, len(out))
				}
				for _, r := range out {
					if r.Status != uint8(wire.StatusOK) {
						return nq, fmt.Errorf("binary door result status %d", r.Status)
					}
				}
				nq += int64(batch)
			}
			return nq, nil
		})
	}

	const (
		workers = 8
		warm    = 150 * time.Millisecond
		window  = 600 * time.Millisecond
	)
	if _, err := httpDoor(workers, warm); err != nil {
		return err
	}
	if _, err := wireDoor(workers, 16, warm); err != nil {
		return err
	}
	httpQPS, err := httpDoor(workers, window)
	if err != nil {
		return err
	}
	bin1, err := wireDoor(workers, 1, window)
	if err != nil {
		return err
	}
	bin16, err := wireDoor(workers, 16, window)
	if err != nil {
		return err
	}
	fmt.Printf("  door          batch        q/s   vs http\n")
	fmt.Printf("  http/text         1  %9.0f     1.00x\n", httpQPS)
	fmt.Printf("  binary            1  %9.0f  %7.2fx\n", bin1, bin1/httpQPS)
	fmt.Printf("  binary           16  %9.0f  %7.2fx\n", bin16, bin16/httpQPS)
	if speed := bin16 / httpQPS; speed < 5 {
		return fmt.Errorf("e26: binary door at batch 16 is %.2fx the HTTP door, below the 5x acceptance bar", speed)
	}
	return nil
}

// fleetClient is one load generator's outcome ledger in E26 part B.
type fleetClient struct {
	attempts atomic.Uint64
	served   atomic.Uint64
}

// e26Flood drives closed-loop 64-query waves at one replica's binary
// door over a raw connection under the given client identity, counting
// per-query outcomes into fc/busy, until stop closes. Transport errors
// end the goroutine — under a healthy fleet they mean the experiment is
// tearing down.
func e26Flood(addr, name string, stop <-chan struct{}, wg *sync.WaitGroup, fc *fleetClient, busy *atomic.Uint64) {
	defer wg.Done()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	br := bufio.NewReader(conn)
	hello, err := wire.AppendHello(nil, name)
	if err != nil {
		return
	}
	if _, err := bw.Write(hello); err != nil {
		return
	}
	const batch = 64
	qs := make([]wire.Query, batch)
	kinds := make([]uint8, batch)
	for i := range qs {
		qs[i] = wire.Query{Kind: wire.QDist, U: 0, V: 1}
		kinds[i] = wire.QDist
	}
	rs := make([]wire.Result, 0, batch)
	var frame, rbuf []byte
	var id uint64
	writeWave := func() error {
		id++
		var err error
		if frame, err = wire.AppendRequest(frame[:0], id, qs); err != nil {
			return err
		}
		fc.attempts.Add(batch)
		if _, err := bw.Write(frame); err != nil {
			return err
		}
		return bw.Flush()
	}
	// Keep two waves outstanding: the next frame is already buffered at
	// the door when the current wave completes, so the replica sees a
	// continuous demand stream instead of a round-trip bubble per wave.
	if err := writeWave(); err != nil {
		return
	}
	for {
		select {
		case <-stop:
			return
		default:
		}
		if err := writeWave(); err != nil {
			return
		}
		kind, payload, err := wire.ReadFrame(br, &rbuf, 0)
		if err != nil || kind != wire.FrameReply {
			return
		}
		_, out, err := wire.ParseReply(payload, kinds, rs[:0])
		if err != nil {
			return
		}
		for _, r := range out {
			switch r.Status {
			case uint8(wire.StatusOK):
				fc.served.Add(1)
			case uint8(wire.StatusOverloaded):
				busy.Add(1)
			}
		}
	}
}

// e26Fleet is part B of E26: a 3-replica fleet of synthetic-latency
// servers behind binary doors with gossiped admission state, loaded to
// ~4x its aggregate capacity by one flooder while ten polite clients
// pace at half the aggregate. Gates: total fleet goodput stays at or
// above 0.9x the calibrated aggregate capacity, and a hog that floods
// only replica A is rejected by replica B — which never saw the hog —
// once A's verdict gossips over.
func e26Fleet() error {
	const (
		// 2ms of synthetic service keeps the experiment sleep-bound
		// rather than CPU-bound, so it stays meaningful on a small (even
		// single-core) box where framing and bookkeeping would otherwise
		// eat into the capacity being measured.
		svc    = 2 * time.Millisecond
		shards = 2
		queue  = 16
		nNodes = 3
		nLight = 10
		// Raw flood connections per replica: with two 64-query waves
		// outstanding per connection, demand comfortably outstrips the
		// shards x queue slots.
		floodConns = 2
		warmup     = 500 * time.Millisecond
		measured   = 1500 * time.Millisecond
	)
	// Calibrate one replica's capacity end to end: the same server
	// shape behind a real binary door, saturated by the same raw wave
	// generator the flood phase uses — so the baseline pays the same
	// framing, parsing and door bookkeeping as the fleet, and the
	// goodput ratio compares like with like (nominal shards/svc would
	// be optimistic twice over). Best of several short windows: a
	// scheduler hiccup during one window understates what the replica
	// can sustain, and every later pacing rate and gate hangs off this
	// figure.
	cal := server.New(e19Index(svc), server.Options{Shards: shards, QueueDepth: queue})
	calDoor := netserve.New(cal, netserve.Options{})
	calLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() {
		if err := calDoor.Serve(calLn); err != nil && !errors.Is(err, net.ErrClosed) {
			log.Printf("e26: calibration door: %v", err)
		}
	}()
	calStop := make(chan struct{})
	var calWG sync.WaitGroup
	calLedger := &fleetClient{}
	var calBusy atomic.Uint64
	for c := 0; c < floodConns; c++ {
		calWG.Add(1)
		go e26Flood(calLn.Addr().String(), "cal", calStop, &calWG, calLedger, &calBusy)
	}
	nominal := float64(shards) * float64(time.Second) / float64(svc)
	calDur := 150 * time.Millisecond
	var capacity float64
	for w := 0; w < 4; w++ {
		before := cal.Stats().Served
		time.Sleep(calDur)
		if c := float64(cal.Stats().Served-before) / calDur.Seconds(); c > capacity {
			capacity = c
		}
		if capacity >= 0.7*nominal {
			break
		}
	}
	close(calStop)
	calWG.Wait()
	calDoor.Close()
	cal.Close()
	if capacity < 0.1*nominal {
		return fmt.Errorf("e26: capacity calibration measured %.0f q/s against a %.0f q/s nominal — box too noisy to run the fleet experiment", capacity, nominal)
	}
	aggregate := nNodes * capacity
	fmt.Printf("  part B: %d-replica fleet, %v/query x %d shards, queue %d: %.0f q/s per replica, %.0f aggregate\n",
		nNodes, svc, shards, queue, capacity, aggregate)

	// The fleet: each replica is a server + binary door + gossiper, the
	// wiring of `hubserve -binary -peers`. Default admission options
	// share Seed 0, so bucket geometry lines up for the max-merge.
	type replica struct {
		srv  *server.Server
		door *netserve.Door
	}
	reps := make([]*replica, nNodes)
	addrs := make([]string, nNodes)
	for i := range reps {
		srv := server.New(e19Index(svc), server.Options{
			Shards:     shards,
			QueueDepth: queue,
			Admission:  &flowctl.Options{},
		})
		defer srv.Close()
		door := netserve.New(srv, netserve.Options{})
		defer door.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go func() {
			if err := door.Serve(ln); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("e26: fleet door: %v", err)
			}
		}()
		reps[i] = &replica{srv: srv, door: door}
		addrs[i] = ln.Addr().String()
	}
	stopGossip := make(chan struct{})
	defer close(stopGossip)
	for i, r := range reps {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		g := netserve.NewGossiper(r.srv.AdmissionController(), peers, 20*time.Millisecond)
		go g.Run(stopGossip)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Ten polite clients jointly pace at half the aggregate capacity.
	// Each spreads its rate over several phase-offset workers so a
	// query's queue wait under overload (up to queue x svc) stays below
	// the per-worker interval — a single blocking worker would sag the
	// offered rate instead of holding the pace.
	const politeW = 8
	polite := make([]*fleetClient, nLight)
	interval := time.Duration(float64(2*nLight) / aggregate * float64(time.Second))
	perWorker := interval * politeW
	for i := range polite {
		cl, err := hubclient.New(hubclient.Options{Replicas: addrs, Name: fmt.Sprintf("polite-%d", i), Timeout: 5 * time.Second})
		if err != nil {
			return err
		}
		defer cl.Close()
		fc := &fleetClient{}
		polite[i] = fc
		for w := 0; w < politeW; w++ {
			wg.Add(1)
			go func(i, w int) {
				defer wg.Done()
				phase := perWorker * time.Duration(i*politeW+w) / time.Duration(nLight*politeW)
				select {
				case <-stop:
					return
				case <-time.After(phase):
				}
				next := time.Now()
				for {
					select {
					case <-stop:
						return
					default:
					}
					fc.attempts.Add(1)
					if _, err := cl.Distance(0, 1); err == nil {
						fc.served.Add(1)
					}
					next = next.Add(perWorker)
					if d := time.Until(next); d > 0 {
						select {
						case <-stop:
							return
						case <-time.After(d):
						}
					} else {
						next = time.Now()
					}
				}
			}(i, w)
		}
	}

	// The flooder offers whatever the fleet will take: floodConns raw
	// connections per replica, each driving closed-loop 64-query waves
	// under one shared identity. Full waves are the point — every wave
	// claims queue slots in bulk at the door, so the flood's pressure
	// reaches the shard queues instead of trickling in as small frames.
	flooder := &fleetClient{}
	var floodBusy atomic.Uint64
	for i := 0; i < nNodes; i++ {
		for c := 0; c < floodConns; c++ {
			wg.Add(1)
			go e26Flood(addrs[i], "flooder", stop, &wg, flooder, &floodBusy)
		}
	}

	// Warm past the controller transient, then measure a steady-state
	// window by snapshotting server and client counters around it.
	time.Sleep(warmup)
	served0 := make([]uint64, nNodes)
	var shed0, rej0 uint64
	for i, r := range reps {
		st := r.srv.Stats()
		served0[i] = st.Served
		shed0 += st.Shed
		rej0 += st.Rejected
	}
	snap := func(fcs []*fleetClient) (att, srvd uint64) {
		for _, fc := range fcs {
			att += fc.attempts.Load()
			srvd += fc.served.Load()
		}
		return
	}
	pAtt0, pSrv0 := snap(polite)
	fAtt0, fSrv0 := snap([]*fleetClient{flooder})
	time.Sleep(measured)
	var goodput float64
	for i, r := range reps {
		goodput += float64(r.srv.Stats().Served - served0[i])
	}
	goodput /= measured.Seconds()
	var shed, rej uint64
	for _, r := range reps {
		st := r.srv.Stats()
		shed += st.Shed
		rej += st.Rejected
	}
	shed -= shed0
	rej -= rej0
	pAtt, pSrv := snap(polite)
	fAtt, fSrv := snap([]*fleetClient{flooder})
	close(stop)
	wg.Wait()

	sec := measured.Seconds()
	politeOff := float64(pAtt-pAtt0) / sec
	politeGot := float64(pSrv-pSrv0) / sec
	floodOff := float64(fAtt-fAtt0) / sec
	floodGot := float64(fSrv-fSrv0) / sec
	fmt.Printf("  client       offered-q/s  served-q/s    sat\n")
	fmt.Printf("  polite x%-2d   %11.0f  %10.0f  %5.2f\n", nLight, politeOff, politeGot, politeGot/math.Max(politeOff, 1))
	fmt.Printf("  flooder      %11.0f  %10.0f  %5.2f   (%d shed as busy)\n",
		floodOff, floodGot, floodGot/math.Max(floodOff, 1), floodBusy.Load())
	fmt.Printf("  offered %.1fx aggregate; fleet goodput %.0f q/s = %.2fx aggregate (shed %d, rejected %d)\n",
		(politeOff+floodOff)/aggregate, goodput, goodput/aggregate, shed, rej)
	if goodput < 0.9*aggregate {
		return fmt.Errorf("e26: fleet goodput %.2fx aggregate capacity, below the 0.9x acceptance bar", goodput/aggregate)
	}

	// Shed sharing: a hog floods replica A only. Its drop probability
	// must cross to B and C — replicas that never saw a hog request —
	// through the gossip max-merge, and B must then reject the hog from
	// a cold start while serving a bystander.
	hogStop := make(chan struct{})
	var hogWG sync.WaitGroup
	hogLedger := &fleetClient{}
	var hogBusy atomic.Uint64
	// More in-flight hog queries than the replica has queue slots
	// (shards x queue), or its queues can never overflow and no verdict
	// forms: 4 connections x 64-query waves = 256 against 64 slots.
	for c := 0; c < floodConns; c++ {
		hogWG.Add(1)
		go e26Flood(addrs[0], "hog", hogStop, &hogWG, hogLedger, &hogBusy)
	}
	// Sample A's verdict while the hog still floods: once the flood
	// stops, every hog query A drains decays the probability back down
	// (OnServed), so a post-stop read would understate the verdict that
	// actually gossiped.
	ctlA := reps[0].srv.AdmissionController()
	deadline := time.Now().Add(5 * time.Second)
	pA := ctlA.Probability("hog")
	for pA < 0.3 {
		if time.Now().After(deadline) {
			close(hogStop)
			hogWG.Wait()
			return fmt.Errorf("e26: hog never throttled on A (P(drop)=%.2f)", pA)
		}
		time.Sleep(5 * time.Millisecond)
		pA = ctlA.Probability("hog")
	}
	close(hogStop)
	hogWG.Wait()
	deadline = time.Now().Add(5 * time.Second)
	for {
		pB := reps[1].srv.AdmissionController().Probability("hog")
		pC := reps[2].srv.AdmissionController().Probability("hog")
		if pB >= 0.3 && pC >= 0.3 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("e26: hog verdict never gossiped to peers (A=%.2f B=%.2f C=%.2f)", pA, pB, pC)
		}
		time.Sleep(5 * time.Millisecond)
	}
	pB := reps[1].srv.AdmissionController().Probability("hog")
	pC := reps[2].srv.AdmissionController().Probability("hog")

	hogB, err := hubclient.New(hubclient.Options{Replicas: addrs[1:2], Name: "hog", Timeout: 5 * time.Second})
	if err != nil {
		return err
	}
	defer hogB.Close()
	busy := 0
	for i := 0; i < 100; i++ {
		if _, err := hogB.Distance(0, 1); errors.Is(err, wire.ErrOverloaded) {
			busy++
		}
	}
	if busy == 0 {
		return fmt.Errorf("e26: hog unthrottled on B despite gossiped P(drop) %.2f", pB)
	}
	bystander, err := hubclient.New(hubclient.Options{Replicas: addrs[1:2], Name: "bystander", Timeout: 5 * time.Second})
	if err != nil {
		return err
	}
	defer bystander.Close()
	if _, err := bystander.Distance(0, 1); err != nil {
		return fmt.Errorf("e26: bystander on B rejected alongside the hog: %v", err)
	}
	fmt.Printf("  shed sharing: hog flooded A only -> P(drop) A=%.2f B=%.2f C=%.2f; B rejected %d/100 hog probes, served the bystander\n",
		pA, pB, pC, busy)
	return nil
}

func e26() error {
	if err := e26Doors(); err != nil {
		return err
	}
	return e26Fleet()
}
