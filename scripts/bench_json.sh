#!/bin/sh
# bench_json.sh PR_NUMBER [BENCH_REGEX]
#
# Runs the E-series benchmarks and emits BENCH_pr<N>.json in the repo
# root: one JSON object per benchmark with name, iterations, ns/op and
# (where reported) B/op and allocs/op. The PR number is required so each
# PR appends its own point to the performance trajectory that
# EXPERIMENTS.md tracks (BENCH_pr1.json, BENCH_pr2.json, ...). The
# default regex covers the query-path benchmarks plus the container-load
# (E17), serving-throughput (E18), admission-control (E19),
# path/eccentricity (E20), zero-copy mmap (E21), disabled-faultinject
# overhead (E22), build-pipeline (E23) and compressed-serving (E24)
# series.
set -eu

PR="${1:?usage: bench_json.sh PR_NUMBER [BENCH_REGEX]}"
REGEX="${2:-BenchmarkE10Query.*|BenchmarkE17.*|BenchmarkE18.*|BenchmarkE19.*|BenchmarkE20.*|BenchmarkE21.*|BenchmarkE22.*|BenchmarkE23.*|BenchmarkE24.*}"
OUT="BENCH_pr${PR}.json"
cd "$(dirname "$0")/.."

go test -run '^$' -bench "$REGEX" -benchtime=1s -benchmem . |
	awk -v pr="$PR" '
	BEGIN { print "["; first = 1 }
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		line = sprintf("  {\"pr\": %s, \"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", pr, name, $2, $3)
		if ($6 == "B/op")      { line = line sprintf(", \"bytes_per_op\": %s", $5) }
		if ($8 == "allocs/op") { line = line sprintf(", \"allocs_per_op\": %s", $7) }
		line = line "}"
		if (!first) { print prev "," }
		prev = line
		first = 0
	}
	END { if (!first) print prev; print "]" }
	' >"$OUT"

echo "wrote $OUT:"
cat "$OUT"
