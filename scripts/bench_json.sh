#!/bin/sh
# bench_json.sh PR_NUMBER [BENCH_REGEX]
#
# Runs the E-series benchmarks and emits BENCH_pr<N>.json in the repo
# root: one JSON object per benchmark with name, iterations, ns/op and
# every other metric the row reports (B/op, allocs/op, and custom
# metrics such as E25's hit_rate). The PR number is required so each
# PR appends its own point to the performance trajectory that
# EXPERIMENTS.md tracks (BENCH_pr1.json, BENCH_pr2.json, ...). The
# default regex covers the query-path benchmarks plus the container-load
# (E17), serving-throughput (E18), admission-control (E19),
# path/eccentricity (E20), zero-copy mmap (E21), disabled-faultinject
# overhead (E22), build-pipeline (E23), compressed-serving (E24) and
# skewed-serving (E25) and network-door (E26) series. The E25
# gallop-crossover rows live in
# package internal/hub (they time unexported kernels directly), so a
# second fixed pass collects them alongside the root-package run.
set -eu

PR="${1:?usage: bench_json.sh PR_NUMBER [BENCH_REGEX]}"
REGEX="${2:-BenchmarkE10Query.*|BenchmarkE17.*|BenchmarkE18.*|BenchmarkE19.*|BenchmarkE20.*|BenchmarkE21.*|BenchmarkE22.*|BenchmarkE23.*|BenchmarkE24.*|BenchmarkE25.*|BenchmarkE26.*}"
OUT="BENCH_pr${PR}.json"
cd "$(dirname "$0")/.."

{
	go test -run '^$' -bench "$REGEX" -benchtime=1s -benchmem .
	go test -run '^$' -bench 'BenchmarkE25Skew.*' -benchtime=1s -benchmem ./internal/hub
} |
	awk -v pr="$PR" '
	BEGIN { print "["; first = 1 }
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		line = sprintf("  {\"pr\": %s, \"name\": \"%s\", \"iterations\": %s", pr, name, $2)
		# Everything after the iteration count is value/unit pairs.
		for (i = 3; i + 1 <= NF; i += 2) {
			key = $(i + 1)
			if      (key == "ns/op")      key = "ns_per_op"
			else if (key == "B/op")       key = "bytes_per_op"
			else if (key == "allocs/op")  key = "allocs_per_op"
			else gsub(/[^A-Za-z0-9_]/, "_", key)
			line = line sprintf(", \"%s\": %s", key, $i)
		}
		line = line "}"
		if (!first) { print prev "," }
		prev = line
		first = 0
	}
	END { if (!first) print prev; print "]" }
	' >"$OUT"

echo "wrote $OUT:"
cat "$OUT"
