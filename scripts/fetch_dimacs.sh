#!/bin/sh
# fetch_dimacs.sh [dataset ...]
#
# Downloads 9th DIMACS Implementation Challenge road instances into the
# hublab dataset cache (internal/dataset reads them from there; the Go
# code itself never touches the network). With no arguments, fetches
# rome99 and the smallest USA instance (usa-ny). Idempotent: instances
# already in the cache are kept, so re-running after a partial fetch
# only downloads what is missing.
#
# Cache dir: $HUBLAB_DATA_DIR, else the user cache dir the Go side uses
# (~/.cache/hublab/datasets on Linux).
set -eu

BASE_URL="${DIMACS_MIRROR:-http://www.diag.uniroma1.it/challenge9/data}"
DIR="${HUBLAB_DATA_DIR:-${XDG_CACHE_HOME:-$HOME/.cache}/hublab/datasets}"
mkdir -p "$DIR"

# name -> remote path (relative to BASE_URL) and local filename; the
# names must match internal/dataset's catalog.
remote_path() {
	case "$1" in
	rome99) echo "rome/rome99.gr" ;;
	usa-ny) echo "USA-road-d/USA-road-d.NY.gr.gz" ;;
	usa-bay) echo "USA-road-d/USA-road-d.BAY.gr.gz" ;;
	usa-col) echo "USA-road-d/USA-road-d.COL.gr.gz" ;;
	usa-fla) echo "USA-road-d/USA-road-d.FLA.gr.gz" ;;
	*)
		echo "fetch_dimacs.sh: unknown dataset '$1' (have: rome99 usa-ny usa-bay usa-col usa-fla)" >&2
		exit 2
		;;
	esac
}

fetch() {
	rel="$(remote_path "$1")"
	file="$(basename "$rel")"
	dest="$DIR/$file"
	plain="${dest%.gz}"
	if [ -s "$dest" ] || [ -s "$plain" ]; then
		echo "have  $1 ($dest)"
		return 0
	fi
	echo "fetch $1 <- $BASE_URL/$rel"
	# Download to a temp sibling and rename, so a killed fetch never
	# leaves a truncated file where internal/dataset would read it.
	tmp="$dest.part"
	if command -v curl >/dev/null 2>&1; then
		curl -fL --retry 3 -o "$tmp" "$BASE_URL/$rel"
	elif command -v wget >/dev/null 2>&1; then
		wget -O "$tmp" "$BASE_URL/$rel"
	else
		echo "fetch_dimacs.sh: need curl or wget" >&2
		exit 3
	fi
	mv "$tmp" "$dest"
	echo "ok    $1 ($dest)"
}

if [ $# -eq 0 ]; then
	set -- rome99 usa-ny
fi
for name in "$@"; do
	fetch "$name"
done
echo "cache: $DIR"
