#!/bin/sh
# fleet_smoke.sh [BIN_DIR]
#
# Three-process hubserve fleet smoke, the CI gate for the distributed
# serving stack (binary doors + hubclient failover + gossiped
# admission). Phases:
#
#   1. Answer fidelity: a query replay through the 3-replica fleet via
#      hubq must be byte-identical to a single hubserve's line door
#      serving the same container.
#   2. Chaos: SIGKILL one replica in the middle of a hubq flood; the
#      flood must finish with successes, a bounded failure count, and
#      the replay against the survivors must still match exactly.
#   3. Shed sharing: a flooder saturating replica A must be rejected by
#      replica B (which never saw the flood) once A's admission state
#      gossips over, while a polite client on B is still served.
#
# Expects prebuilt binaries (hubgen, hubserve, hubq) in BIN_DIR
# (default: bin).
set -eu

BIN="${1:-bin}"
P1=19101 P2=19102 P3=19103
A="127.0.0.1:$P1" B="127.0.0.1:$P2" C="127.0.0.1:$P3"
PIDS=""

cleanup() {
	for p in $PIDS; do
		kill -9 "$p" 2>/dev/null || true
	done
	wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

# wait_ready ADDR: poll a replica's binary door until it answers.
wait_ready() {
	for _ in $(seq 1 100); do
		if printf '0 1\nquit\n' | "$BIN/hubq" -replicas "$1" 2>/dev/null | grep -q '^0 1 '; then
			return 0
		fi
		sleep 0.1
	done
	echo "fleet_smoke: replica $1 never became ready" >&2
	return 1
}

echo "=== fixture: container + query replay + single-node ground truth"
"$BIN/hubgen" -gen gnm -n 2000 -algo pll -out /tmp/fleet.hli -graphout /tmp/fleet.gr
{
	i=0
	while [ $i -lt 100 ]; do
		echo "$i $((i * 17 % 2000))"
		i=$((i + 1))
	done
	echo "PATH 0 17"
	echo "ECC 3"
	echo "quit"
} >/tmp/fleet.q
"$BIN/hubserve" -index /tmp/fleet.hli </tmp/fleet.q >/tmp/fleet.want 2>/dev/null

echo "=== phase 1+2: 3-replica fleet, replay fidelity, SIGKILL mid-flood"
"$BIN/hubserve" -index /tmp/fleet.hli -binary "$A" -peers "$B,$C" -gossipevery 20ms 2>/tmp/fleet.n1.log &
N1=$!
"$BIN/hubserve" -index /tmp/fleet.hli -binary "$B" -peers "$A,$C" -gossipevery 20ms 2>/tmp/fleet.n2.log &
N2=$!
"$BIN/hubserve" -index /tmp/fleet.hli -binary "$C" -peers "$A,$B" -gossipevery 20ms 2>/tmp/fleet.n3.log &
N3=$!
PIDS="$N1 $N2 $N3"
wait_ready "$A"
wait_ready "$B"
wait_ready "$C"

"$BIN/hubq" -replicas "$A,$B,$C" -name replay </tmp/fleet.q >/tmp/fleet.got 2>/dev/null
diff /tmp/fleet.want /tmp/fleet.got
echo "replay through the fleet matches a single node"

"$BIN/hubq" -replicas "$A,$B,$C" -name chaos -flood 200000 -concurrency 16 -vertices 2000 >/tmp/fleet.flood &
FLOOD=$!
sleep 0.3
kill -9 "$N2" # the chaos: one replica dies mid-flood, no drain
if ! wait "$FLOOD"; then
	echo "fleet_smoke: flood failed outright" >&2
	cat /tmp/fleet.flood >&2
	exit 1
fi
cat /tmp/fleet.flood
failed=$(sed -n 's/.*, \([0-9]*\) failed$/\1/p' /tmp/fleet.flood | head -1)
# Failover retries transport errors on survivors: failures must be
# bounded by the in-flight window at the kill, not grow with the
# outage. 2000 >> workers + 2*max-batch, << the 200000 issued.
test "$failed" -le 2000
"$BIN/hubq" -replicas "$A,$C" -name replay2 </tmp/fleet.q >/tmp/fleet.got2 2>/dev/null
diff /tmp/fleet.want /tmp/fleet.got2
echo "survivors still answer byte-identically after the kill (failed=$failed of 200000)"
kill -9 "$N1" "$N3" 2>/dev/null || true
PIDS=""

echo "=== phase 3: shed sharing (flooder throttled on A is rejected on B)"
# Tiny capacity (1 worker, queue 1, 100ms/query) so the flood saturates
# A deterministically; B and C share the admission geometry and seed.
"$BIN/hubserve" -index /tmp/fleet.hli -binary "$A" -peers "$B,$C" -gossipevery 20ms \
	-workers 1 -queue 1 -simlatency 100ms 2>/tmp/fleet.s1.log &
S1=$!
"$BIN/hubserve" -index /tmp/fleet.hli -binary "$B" -peers "$A,$C" -gossipevery 20ms \
	-workers 1 -queue 1 -simlatency 100ms 2>/tmp/fleet.s2.log &
S2=$!
"$BIN/hubserve" -index /tmp/fleet.hli -binary "$C" -peers "$A,$B" -gossipevery 20ms \
	-workers 1 -queue 1 -simlatency 100ms 2>/tmp/fleet.s3.log &
S3=$!
PIDS="$S1 $S2 $S3"
wait_ready "$A"
wait_ready "$B"

# Saturate A as "flooder": 32 concurrent queries against a 100ms
# single-worker backend overflow the non-blocking queue immediately,
# each overflow bumps the flooder's drop probability (Inc 0.05, so the
# first burst alone pins it at the 0.98 cap), and busy answers confirm
# the shed.
"$BIN/hubq" -replicas "$A" -name flooder -flood 200 -concurrency 32 -vertices 2000 -timeout 5s >/tmp/fleet.shed
cat /tmp/fleet.shed
busyA=$(sed -n 's/.* \([0-9]*\) busy,.*/\1/p' /tmp/fleet.shed | head -1)
test "$busyA" -gt 0

sleep 0.5 # a handful of gossip rounds
# B never saw the flood, but the gossiped verdict must reject the
# flooder there: at drop probability ~0.98, 40 probes all passing has
# probability 0.02^40 — a busy count of zero means gossip failed.
"$BIN/hubq" -replicas "$B" -name flooder -flood 40 -concurrency 4 -vertices 2000 -timeout 5s >/tmp/fleet.shedB
cat /tmp/fleet.shedB
busyB=$(sed -n 's/.* \([0-9]*\) busy,.*/\1/p' /tmp/fleet.shedB | head -1)
test "$busyB" -gt 0
# The polite client rides the same replica unthrottled (its buckets are
# untouched; only capacity, not identity, can slow it down).
printf '0 17\nquit\n' | "$BIN/hubq" -replicas "$B" -name polite -timeout 10s 2>/dev/null >/tmp/fleet.polite
grep -q '^0 17 ' /tmp/fleet.polite
echo "shed sharing works: flooder busy on A=$busyA, on B=$busyB; polite client served"

echo "fleet_smoke: all phases passed"
