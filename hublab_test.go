package hublab

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFacadeServing drives the serving surface through the re-exported
// API: build an index, serve it with fair admission enabled, query
// through both doors, and check the overload errors and counters are
// reachable from the facade.
func TestFacadeServing(t *testing.T) {
	g, err := GenerateGnm(150, 270, 7)
	if err != nil {
		t.Fatalf("GenerateGnm: %v", err)
	}
	idx, err := BuildIndex("hub-labels", g, IndexOptions{Seed: 1})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	srv := NewServer(idx, ServerOptions{Shards: 2, Admission: &AdmissionOptions{}})
	want := ShortestDistance(g, 4, 140)
	if got := srv.Query(4, 140); got != want {
		t.Errorf("Query = %d, want %d", got, want)
	}
	d, err := srv.TryQuery("facade-client", 4, 140)
	if err != nil || d != want {
		t.Errorf("TryQuery = %d, %v, want %d, nil", d, err, want)
	}
	// Hostile ids degrade to Infinity through every layer.
	if d, err := srv.TryQuery("facade-client", -3, 9999); err != nil || d != Infinity {
		t.Errorf("TryQuery(hostile) = %d, %v, want Infinity, nil", d, err)
	}
	var st ServerStats = srv.Stats()
	if st.Served != 3 || st.Rejected != 0 || st.Shed != 0 {
		t.Errorf("Stats = %+v, want 3 served and clean overload counters", st)
	}
	srv.Close()
	if _, err := srv.TryQuery("facade-client", 1, 2); !errors.Is(err, ErrServerClosed) {
		t.Errorf("TryQuery after Close: %v, want ErrServerClosed", err)
	}
	if !errors.Is(ErrServerOverloaded, ErrServerOverloaded) {
		t.Error("ErrServerOverloaded lost identity through the facade")
	}
}

// TestFacadeQuickstart exercises the re-exported API end to end the way the
// README's quickstart does.
func TestFacadeQuickstart(t *testing.T) {
	g, err := GenerateGnm(200, 360, 42)
	if err != nil {
		t.Fatalf("GenerateGnm: %v", err)
	}
	labels, err := BuildPLL(g, PLLOptions{})
	if err != nil {
		t.Fatalf("BuildPLL: %v", err)
	}
	if err := labels.VerifySampled(g, 200, 1); err != nil {
		t.Fatalf("VerifySampled: %v", err)
	}
	d, ok := labels.Query(3, 77)
	if !ok {
		t.Fatal("Query found no common hub on a connected graph")
	}
	if want := ShortestDistance(g, 3, 77); d != want {
		t.Errorf("Query = %d, want %d", d, want)
	}
}

func TestFacadeLowerBound(t *testing.T) {
	h, err := BuildLayered(LayeredParams{B: 2, L: 2})
	if err != nil {
		t.Fatalf("BuildLayered: %v", err)
	}
	cert := h.CertificateH()
	if cert.AvgHubLB <= 0 {
		t.Errorf("certificate lower bound = %v", cert.AvgHubLB)
	}
	fig, err := FigureOne()
	if err != nil {
		t.Fatalf("FigureOne: %v", err)
	}
	if fig.BlueLength >= fig.RedLength {
		t.Errorf("blue %d should beat red %d", fig.BlueLength, fig.RedLength)
	}
}

func TestFacadeSumIndex(t *testing.T) {
	p, err := NewSumIndexProtocol(2, 2)
	if err != nil {
		t.Fatalf("NewSumIndexProtocol: %v", err)
	}
	bits := []bool{true, false, false, true}
	in := NewSumIndexInstance(bits)
	sess, err := p.NewSession(in)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if _, _, err := sess.VerifyAll(in); err != nil {
		t.Errorf("VerifyAll: %v", err)
	}
}

func TestFacadeTheorem14(t *testing.T) {
	g, err := GenerateGnm(90, 140, 8)
	if err != nil {
		t.Fatalf("GenerateGnm: %v", err)
	}
	res, err := BuildTheorem14(g, Theorem41Options{D: 3, Seed: 5})
	if err != nil {
		t.Fatalf("BuildTheorem14: %v", err)
	}
	if err := res.Labeling.VerifyCover(g); err != nil {
		t.Errorf("VerifyCover: %v", err)
	}
}

func TestFacadeDistanceLabels(t *testing.T) {
	tree, err := GenerateRandomTree(100, 6)
	if err != nil {
		t.Fatalf("GenerateRandomTree: %v", err)
	}
	cl, err := CentroidTreeLabels(tree)
	if err != nil {
		t.Fatalf("CentroidTreeLabels: %v", err)
	}
	bits, err := HubDistanceLabels(cl)
	if err != nil {
		t.Fatalf("HubDistanceLabels: %v", err)
	}
	euler, err := EulerTourLabels(tree)
	if err != nil {
		t.Fatalf("EulerTourLabels: %v", err)
	}
	if bits.AvgBits() >= euler.AvgBits() {
		t.Errorf("centroid bits %.0f should beat euler bits %.0f on a tree",
			bits.AvgBits(), euler.AvgBits())
	}
	set := BehrendSet(100)
	if len(set) < 5 {
		t.Errorf("BehrendSet(100) size = %d, unexpectedly small", len(set))
	}
}

// TestFacadeBuildPipeline drives the million-vertex build surface at toy
// scale through the re-exported API: a skewed generator, a registered
// landmark order, the parallel unfrozen build, and the streaming
// container emission — whose bytes must match the freeze-then-save path
// exactly.
func TestFacadeBuildPipeline(t *testing.T) {
	g, err := GenerateRMAT(9, 1000, 3)
	if err != nil {
		t.Fatalf("GenerateRMAT: %v", err)
	}
	names := PLLOrderNames()
	seen := map[string]bool{}
	for _, name := range names {
		seen[name] = true
	}
	for _, want := range []string{"degree", "betweenness", "random", "natural"} {
		if !seen[want] {
			t.Fatalf("PLLOrderNames() = %v, missing %q", names, want)
		}
	}
	if err := RegisterPLLOrder("degree", nil); err == nil {
		t.Fatal("RegisterPLLOrder accepted a nil duplicate")
	}

	unfrozen, err := BuildPLLUnfrozen(g, PLLOptions{OrderBy: "degree", Workers: 4})
	if err != nil {
		t.Fatalf("BuildPLLUnfrozen: %v", err)
	}
	dir := t.TempDir()
	streamed := filepath.Join(dir, "streamed.hli")
	if err := SaveIndexStreaming(streamed, unfrozen, ContainerOptions{}); err != nil {
		t.Fatalf("SaveIndexStreaming: %v", err)
	}

	frozen, err := BuildPLL(g, PLLOptions{OrderBy: "degree", Workers: 1})
	if err != nil {
		t.Fatalf("BuildPLL: %v", err)
	}
	saved := filepath.Join(dir, "saved.hli")
	if err := SaveIndex(saved, NewHubLabelsIndex(frozen), ContainerOptions{}); err != nil {
		t.Fatalf("SaveIndex: %v", err)
	}
	a, err := os.ReadFile(streamed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(saved)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("parallel streamed container differs from sequential frozen save")
	}

	idx, err := LoadIndex(streamed)
	if err != nil {
		t.Fatalf("LoadIndex: %v", err)
	}
	if err := VerifySampledIndex(idx, g, 200, 5); err != nil {
		t.Errorf("VerifySampledIndex: %v", err)
	}
}

// TestFacadeDimacs parses a tiny DIMACS .gr instance through the facade
// and checks the hostile-input error is reachable.
func TestFacadeDimacs(t *testing.T) {
	const gr = "c tiny\np sp 3 4\na 1 2 5\na 2 1 5\na 2 3 2\na 3 2 2\n"
	g, err := ReadGraphDimacs(strings.NewReader(gr))
	if err != nil {
		t.Fatalf("ReadGraphDimacs: %v", err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("parsed n=%d m=%d, want 3, 2", g.NumNodes(), g.NumEdges())
	}
	if d := ShortestDistance(g, 0, 2); d != 7 {
		t.Errorf("distance 0-2 = %d, want 7", d)
	}
	if _, err := ReadGraphDimacs(strings.NewReader("p sp 2 1\na 1 9 4\n")); !errors.Is(err, ErrDimacsFormat) {
		t.Errorf("out-of-range arc: err = %v, want ErrDimacsFormat", err)
	}
}
