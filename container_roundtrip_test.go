package hublab

import (
	"bytes"
	"math/rand"
	"testing"

	"hublab/internal/cover"
	"hublab/internal/dlabel"
	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/hhl"
	"hublab/internal/hub"
	"hublab/internal/pll"
	"hublab/internal/sparsehub"
	"hublab/internal/ubound"
)

// TestContainerRoundTripAcrossBuilders writes the frozen labeling of every
// construction path to a container (raw and gamma) and asserts the loaded
// form answers exactly the same queries as the original Freeze result.
func TestContainerRoundTripAcrossBuilders(t *testing.T) {
	g, err := gen.Gnm(160, 290, 23)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	order := make([]graph.NodeID, g.NumNodes())
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	tree, err := gen.RandomTree(127, 7)
	if err != nil {
		t.Fatalf("RandomTree: %v", err)
	}
	builders := []struct {
		name  string
		build func() (*hub.Labeling, error)
	}{
		{"pll", func() (*hub.Labeling, error) { return pll.Build(g, pll.Options{}) }},
		{"greedy-cover", func() (*hub.Labeling, error) { return cover.Greedy(g) }},
		{"sparse-hubs", func() (*hub.Labeling, error) {
			res, err := sparsehub.Build(g, sparsehub.Options{Seed: 5})
			if err != nil {
				return nil, err
			}
			return res.Labeling, nil
		}},
		{"theorem41", func() (*hub.Labeling, error) {
			res, err := ubound.Build(g, ubound.Options{D: 2, Seed: 5})
			if err != nil {
				return nil, err
			}
			return res.Labeling, nil
		}},
		{"canonical-hhl", func() (*hub.Labeling, error) { return hhl.Canonical(g, order) }},
		{"centroid-tree", func() (*hub.Labeling, error) { return dlabel.Centroid(tree) }},
	}
	for _, bc := range builders {
		t.Run(bc.name, func(t *testing.T) {
			l, err := bc.build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			f := l.Freeze()
			n := f.NumVertices()
			for _, opts := range []hub.ContainerOptions{{}, {Compress: true}} {
				var buf bytes.Buffer
				if _, err := f.WriteContainer(&buf, opts); err != nil {
					t.Fatalf("WriteContainer(compress=%v): %v", opts.Compress, err)
				}
				loaded, err := hub.ReadContainer(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("ReadContainer(compress=%v): %v", opts.Compress, err)
				}
				if loaded.NumVertices() != n {
					t.Fatalf("loaded %d vertices, want %d", loaded.NumVertices(), n)
				}
				rng := rand.New(rand.NewSource(31))
				for k := 0; k < 2000; k++ {
					u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
					dw, okW := f.Query(u, v)
					dl, okL := loaded.Query(u, v)
					if dw != dl || okW != okL {
						t.Fatalf("compress=%v (%d,%d): original (%d,%v) vs loaded (%d,%v)",
							opts.Compress, u, v, dw, okW, dl, okL)
					}
				}
			}
		})
	}
}
