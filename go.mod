module hublab

go 1.24
