// Command sumindexdemo runs the Theorem 1.6 reduction end to end: a
// Sum-Index instance is planted into the layered graph G'_{b,ℓ} by deleting
// level-ℓ vertices, Alice and Bob exchange distance labels of their
// endpoint vertices, and the referee recovers S[(a+b) mod m] from the
// decoded distance. The demo verifies every index pair and reports message
// sizes against the trivial protocol.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hublab"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, params := range [][2]int{{2, 2}, {3, 2}} {
		p, err := hublab.NewSumIndexProtocol(params[0], params[1])
		if err != nil {
			return err
		}
		m := p.M()
		rng := rand.New(rand.NewSource(42))
		bits := make([]bool, m)
		for i := range bits {
			bits[i] = rng.Intn(2) == 1
		}
		in := hublab.NewSumIndexInstance(bits)
		sess, err := p.NewSession(in)
		if err != nil {
			return err
		}
		pairs, maxBits, err := sess.VerifyAll(in)
		if err != nil {
			return err
		}
		fmt.Printf("protocol (b=%d, l=%d): m=%d\n", params[0], params[1], m)
		fmt.Printf("  all %d (a,b) pairs decoded correctly by the referee\n", pairs)
		fmt.Printf("  max message: %d bits (trivial protocol: %d bits)\n", maxBits, m+logBits(m))

		tr, err := sess.Run(1, m-1)
		if err != nil {
			return err
		}
		fmt.Printf("  example: a=1, b=%d -> S[%d]=%d (alice %d bits, bob %d bits)\n\n",
			m-1, (1+m-1)%m, tr.Output, tr.AliceBits, tr.BobBits)
	}
	fmt.Println("note: at laptop-scale m the labels exceed the trivial m bits;")
	fmt.Println("the reduction's point is the asymptotic transfer: any")
	fmt.Println("o(SUMINDEX(n)/2^Θ(√log n))-bit distance labeling would beat the")
	fmt.Println("best known Sum-Index protocols (Theorem 1.6).")
	return nil
}

func logBits(m int) int {
	bits := 1
	for 1<<uint(bits) < m {
		bits++
	}
	return bits
}
