// Command lowerbound walks through the paper's Section 2 construction:
// it reproduces Figure 1 on H_{2,2}, verifies Lemma 2.2 exhaustively,
// builds the max-degree-3 expansion G_{2,2}, and compares the certified
// average-hub-size lower bound against actual hub labelings (PLL and the
// greedy 2-hop cover).
package main

import (
	"fmt"
	"log"

	"hublab"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// ---- Figure 1 ----
	fig, err := hublab.FigureOne()
	if err != nil {
		return err
	}
	fmt.Printf("Figure 1 (H_{2,2}, A=%d):\n", fig.A)
	fmt.Printf("  blue path v0,(1,0) -> v4,(3,2): length %d = 4A+%d, unique=%v, via v2,(2,1)=%v\n",
		fig.BlueLength, fig.BlueLength-4*fig.A, fig.Unique, fig.ViaMid)
	fmt.Printf("  red  path (front-loaded):      length %d = 4A+%d\n",
		fig.RedLength, fig.RedLength-4*fig.A)

	// ---- Lemma 2.2, exhaustively ----
	h, err := hublab.BuildLayered(hublab.LayeredParams{B: 2, L: 2})
	if err != nil {
		return err
	}
	checked, bad, err := h.VerifyLemma22All()
	if err != nil {
		return err
	}
	fmt.Printf("\nLemma 2.2 on H_{2,2}: %d (x,z) pairs checked, violations: %v\n", checked, bad != nil)

	// ---- Theorem 2.1: the degree-3 expansion ----
	e, err := hublab.BuildDegree3(hublab.LayeredParams{B: 2, L: 2})
	if err != nil {
		return err
	}
	fmt.Printf("\nG_{2,2}: n=%d, m=%d, max degree=%d (Theorem 2.1(ii))\n",
		e.G.NumNodes(), e.G.NumEdges(), e.G.MaxDegree())

	// ---- Theorem 2.1(iii): certificate vs real labelings ----
	cert := h.CertificateH()
	fmt.Printf("\ncertified avg hub size lower bound on H_{2,2}: %.3f (triplets=%.0f, hops<=%d)\n",
		cert.AvgHubLB, cert.Triplets, cert.HopBound)

	pllLabels, err := hublab.BuildPLL(h.G, hublab.PLLOptions{})
	if err != nil {
		return err
	}
	if err := pllLabels.VerifyCover(h.G); err != nil {
		return err
	}
	greedy, err := hublab.BuildGreedyCover(h.G)
	if err != nil {
		return err
	}
	if err := greedy.VerifyCover(h.G); err != nil {
		return err
	}
	fmt.Printf("measured avg hub size:  PLL = %.2f, greedy 2-hop = %.2f  (both >= bound, as required)\n",
		pllLabels.ComputeStats().Avg, greedy.ComputeStats().Avg)

	// Scaling: the certificate grows with (s/2)^l while n grows with s^l.
	fmt.Println("\nscaling of the certificate (Theorem 1.1 shape):")
	fmt.Println("  b  l      n(H)   certified-LB   PLL-avg")
	for _, p := range []hublab.LayeredParams{{B: 2, L: 2}, {B: 3, L: 2}, {B: 4, L: 2}} {
		hh, err := hublab.BuildLayered(p)
		if err != nil {
			return err
		}
		c := hh.CertificateH()
		lab, err := hublab.BuildPLL(hh.G, hublab.PLLOptions{})
		if err != nil {
			return err
		}
		fmt.Printf("  %d  %d  %8d   %10.3f   %8.2f\n",
			p.B, p.L, hh.G.NumNodes(), c.AvgHubLB, lab.ComputeStats().Avg)
	}
	return nil
}
