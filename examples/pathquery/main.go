// Command pathquery tours the path-reporting and eccentricity query
// surface: build a road-like weighted network, construct hub labels
// (whose shortest-path searches record a parent column for free), persist
// and reload them as a version-2 container, then answer witness-path and
// farthest-point queries from the labels alone — the same queries
// `hubserve` exposes as the PATH/ECC line verbs and the /path and /ecc
// HTTP endpoints:
//
//	hubgen -gen road -n 1024 -algo pll -out labels.hli
//	printf 'PATH 0 1023\nECC 0\nquit\n' | hubserve -index labels.hli
//	hubserve -index labels.hli -http :8080 &
//	curl 'localhost:8080/path?u=0&v=1023'
//	curl 'localhost:8080/ecc?v=0'
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"hublab"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A weighted road-like grid: local streets plus fast highway rows.
	g, err := hublab.GenerateRoadLike(24, 24, 6, 11)
	if err != nil {
		return err
	}
	fmt.Printf("graph: n=%d m=%d weighted=%v\n", g.NumNodes(), g.NumEdges(), g.Weighted())

	labels, err := hublab.BuildPLL(g, hublab.PLLOptions{})
	if err != nil {
		return err
	}

	// Persist → reload: the parent column rides in the version-2 container,
	// so a serving process reports paths without ever seeing the graph.
	dir, err := os.MkdirTemp("", "hublab-pathquery-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "labels.hli")
	if err := hublab.SaveIndex(path, hublab.NewHubLabelsIndex(labels), hublab.ContainerOptions{}); err != nil {
		return err
	}
	idx, err := hublab.LoadIndex(path)
	if err != nil {
		return err
	}
	if !idx.Flat().HasParents() {
		return fmt.Errorf("loaded container lost the parent column")
	}

	// A witness path: not just how far, but which way.
	u, v := hublab.NodeID(0), hublab.NodeID(g.NumNodes()-1)
	route, err := idx.AppendPath(nil, u, v)
	if err != nil {
		return err
	}
	fmt.Printf("dist(%d,%d) = %d over %d hops\n", u, v, idx.Distance(u, v), len(route)-1)
	fmt.Printf("route: %d", route[0])
	for _, x := range route[1:] {
		fmt.Printf(" -> %d", x)
	}
	fmt.Println()

	// Farthest-point queries from the same labels: the eccentricity of a
	// corner and of a center vertex of the grid.
	for _, w := range []hublab.NodeID{0, hublab.NodeID(12*24 + 12)} {
		far, ecc, err := idx.Farthest(w)
		if err != nil {
			return err
		}
		fmt.Printf("ecc(%d) = %d, attained at vertex %d\n", w, ecc, far)
	}
	return nil
}
