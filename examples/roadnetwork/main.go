// Command roadnetwork demonstrates the practice-side motivation the paper
// opens with: on transportation-like networks, hub labelings exploiting the
// highway structure stay small and answer queries orders of magnitude
// faster than graph search — while random sparse graphs of the same size
// need near-linear labels under ANY landmark order (the hardness this paper
// explains).
// Labelings are cached as index containers under the user cache
// directory, so repeated runs load the stored query structure instead of
// rebuilding it — the build → persist → load → serve lifecycle in
// miniature.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"hublab"
	"hublab/internal/pll"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const side, period = 40, 8
	// Weighted grid with fast highway rows/columns every `period` blocks.
	road, err := hublab.GenerateRoadLike(side, side, period, 3)
	if err != nil {
		return err
	}
	// A random max-degree-3 graph with the same vertex count.
	random, err := hublab.GenerateRandomRegular(road.NumNodes(), 3, 3)
	if err != nil {
		return err
	}
	highwayOrder, err := pll.RoadHighwayOrder(side, side, period)
	if err != nil {
		return err
	}

	for _, tc := range []struct {
		name string
		g    *hublab.Graph
		opts hublab.PLLOptions
	}{
		{"road-like (highway order)", road, hublab.PLLOptions{Custom: highwayOrder}},
		{"road-like (degree order)", road, hublab.PLLOptions{}},
		{"random degree-3", random, hublab.PLLOptions{}},
	} {
		start := time.Now()
		idx, cached, err := cachedLabels(tc.name, tc.g, tc.opts)
		if err != nil {
			return err
		}
		build := time.Since(start)
		flat := idx.Flat()
		if err := flat.Thaw().VerifySampled(tc.g, 200, 9); err != nil {
			return err
		}
		stats := flat.ComputeStats()
		how := "build"
		if cached {
			how = "load"
		}
		fmt.Printf("%-26s n=%d  avg|S(v)|=%6.1f  max=%4d  %s=%v\n",
			tc.name, tc.g.NumNodes(), stats.Avg, stats.Max, how, build.Round(time.Millisecond))

		// Compare label query vs bidirectional search on one far pair.
		u, v := hublab.NodeID(0), hublab.NodeID(tc.g.NumNodes()-1)
		qs := time.Now()
		const reps = 2000
		var d hublab.Weight
		for i := 0; i < reps; i++ {
			d, _ = flat.Query(u, v)
		}
		perQuery := time.Since(qs) / reps
		ds := time.Now()
		want := hublab.ShortestDistance(tc.g, u, v)
		searchTime := time.Since(ds)
		if d != want {
			return fmt.Errorf("%s: label decode %d != %d", tc.name, d, want)
		}
		fmt.Printf("%-26s dist(%d,%d)=%d  label-query=%v  graph-search=%v\n\n",
			"", u, v, d, perQuery, searchTime.Round(time.Microsecond))
	}
	fmt.Println("the highway order exploits the road structure (small hubs, the")
	fmt.Println("highway-dimension story); the random sparse graph stays near-linear")
	fmt.Println("under any order — the hardness regime this paper proves.")
	return nil
}

// cachedLabels loads the labeling for key from the container cache when a
// prior run saved it (reporting cached=true), building and saving it
// otherwise.
func cachedLabels(key string, g *hublab.Graph, opts hublab.PLLOptions) (*hublab.HubLabelsIndex, bool, error) {
	dir, err := os.UserCacheDir()
	if err != nil {
		dir = os.TempDir()
	}
	dir = filepath.Join(dir, "hublab-roadnetwork")
	path := filepath.Join(dir, sanitize(key)+".hli")
	if idx, err := hublab.LoadIndex(path); err == nil && hublab.VerifySampledIndex(idx, g, 32, 41) == nil {
		return idx, true, nil
	}
	// Missing, unreadable or stale (the instance changed across versions
	// while n stayed the same): rebuild and save over the old file.
	labels, err := hublab.BuildPLL(g, opts)
	if err != nil {
		return nil, false, err
	}
	idx := hublab.NewHubLabelsIndex(labels)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, false, err
	}
	if err := hublab.SaveIndex(path, idx, hublab.ContainerOptions{Compress: true}); err != nil {
		return nil, false, err
	}
	return idx, false, nil
}

func sanitize(s string) string {
	out := []rune(s)
	for i, r := range out {
		switch r {
		case ' ', '(', ')', '/':
			out[i] = '-'
		}
	}
	return string(out)
}
