// Command quickstart is the smallest possible tour of hublab: build a
// sparse random graph, construct a pruned landmark labeling, answer a few
// exact distance queries from labels alone, verify the labeling, and
// round-trip it through the persistent index container so a later process
// can serve it without rebuilding.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"hublab"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A connected sparse random graph: 1000 vertices, ~1800 edges.
	g, err := hublab.GenerateGnm(1000, 1800, 7)
	if err != nil {
		return err
	}
	fmt.Printf("graph: n=%d m=%d avg-degree=%.2f\n", g.NumNodes(), g.NumEdges(), g.AvgDegree())

	labels, err := hublab.BuildPLL(g, hublab.PLLOptions{})
	if err != nil {
		return err
	}
	stats := labels.ComputeStats()
	fmt.Printf("hub labeling: avg |S(v)| = %.1f, max = %d, total = %d\n",
		stats.Avg, stats.Max, stats.Total)

	// Distance queries use only the two labels.
	for _, pair := range [][2]hublab.NodeID{{0, 999}, {17, 545}, {3, 3}} {
		d, ok := labels.Query(pair[0], pair[1])
		fmt.Printf("dist(%d,%d) = %d (ok=%v)\n", pair[0], pair[1], d, ok)
		if want := hublab.ShortestDistance(g, pair[0], pair[1]); ok && d != want {
			return fmt.Errorf("label decode %d != true distance %d", d, want)
		}
	}

	// Sampled verification against true shortest paths.
	if err := labels.VerifySampled(g, 500, 1); err != nil {
		return err
	}
	fmt.Println("verified: 500 random pairs decode exactly")

	// Persist the frozen labeling as an index container and load it back —
	// this is how hubgen -out / hubserve -index share work across runs.
	dir, err := os.MkdirTemp("", "hublab-quickstart-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "labels.hli")
	if err := hublab.SaveIndex(path, hublab.NewHubLabelsIndex(labels), hublab.ContainerOptions{}); err != nil {
		return err
	}
	loaded, err := hublab.LoadIndex(path)
	if err != nil {
		return err
	}
	d, _ := labels.Query(17, 545)
	if got := loaded.Distance(17, 545); got != d {
		return fmt.Errorf("container round trip: %d != %d", got, d)
	}
	fmt.Printf("container round trip: %s is %d bytes and answers dist(17,545)=%d without rebuilding\n",
		filepath.Base(path), loaded.SpaceBytes(), d)
	return nil
}
